//! The push-based session facade: one builder, one ingest surface, typed
//! output events — over every execution engine.
//!
//! The paper's model is event-driven: nodes *receive* new values, and the
//! coordinator only learns what the filters let through. The engine types
//! ([`TopkMonitor`], [`ThreadedTopkMonitor`]) still expose that inverted —
//! the caller owns a dense value row (or hand-builds delta lists) and picks
//! a concrete runtime up front. [`MonitorSession`] restores the paper's
//! shape:
//!
//! ```
//! use topk_core::session::MonitorBuilder;
//! use topk_net::id::NodeId;
//!
//! let mut session = MonitorBuilder::new(4, 2).seed(42).build();
//! session.update_batch([(NodeId(0), 20), (NodeId(1), 100), (NodeId(2), 40), (NodeId(3), 80)]);
//! let events = session.advance(0);
//! assert!(!events.is_empty(), "initialization emits Entered/Threshold events");
//! assert_eq!(session.topk(), &[NodeId(1), NodeId(3)]);
//! ```
//!
//! * **One builder.** [`MonitorBuilder`] carries every knob (`n`, `k`,
//!   slack, [`ResetStrategy`], [`HandlerMode`], [`BroadcastPolicy`], seed)
//!   plus an [`Engine`] choice, replacing the four-way constructor pick
//!   (`TopkMonitor` vs `ThreadedTopkMonitor`, dense vs sparse driving).
//! * **One ingest surface.** [`MonitorSession::update`] /
//!   [`MonitorSession::update_batch`] buffer observations; nothing reaches
//!   the monitor until [`MonitorSession::advance`] commits the time step.
//!   The session routes the commit to the engine's sparse path when the
//!   batch is small and to the dense diff otherwise — both are
//!   bit-identical (pinned by `tests/runtime_conformance.rs`), so routing
//!   is purely a cost choice.
//! * **Typed output.** `advance` returns the step's
//!   [`TopkEvent`]s, drained from a buffer that is reused across steps
//!   (steady-state silent ticks allocate nothing). Replaying the event
//!   stream reconstructs `topk()` and `threshold()` exactly — see
//!   [`crate::events::EventReplay`] and `tests/session_events.rs`.
//!
//! Cheap polling queries remain: [`MonitorSession::topk`] (a borrowed
//! slice), [`MonitorSession::in_topk`] (O(1)),
//! [`MonitorSession::threshold`], [`MonitorSession::metrics`].

use topk_net::behavior::{CoordinatorBehavior as _, ValueFeed};
use topk_net::chaos::{ChaosPolicy, RecoveryMetrics};
use topk_net::id::{NodeId, Value};
use topk_net::ledger::LedgerSnapshot;
use topk_proto::extremum::BroadcastPolicy;

use crate::config::{ApproxMode, HandlerMode, MonitorConfig, ResetStrategy};
use crate::coordinator::CoordinatorMachine;
use crate::events::TopkEvent;
use crate::metrics::RunMetrics;
use crate::monitor::{Monitor, TopkMonitor};
use crate::socket::SocketTopkMonitor;
use crate::threaded::ThreadedTopkMonitor;

/// Which runtime executes the protocol under a [`MonitorSession`].
///
/// Every engine is bit-identical in everything the model observes (answers,
/// ledgers, node state, RNG streams — pinned by
/// `tests/runtime_conformance.rs`); the choice trades wall-clock shape, not
/// behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Let the session pick among the three engines. Currently resolves to
    /// [`Engine::Sequential`] — the in-process runtime is the fastest at
    /// every scale we bench — but the policy may evolve without an API
    /// change; use an explicit variant to pin a runtime.
    #[default]
    Auto,
    /// The deterministic in-process runtime ([`TopkMonitor`]).
    Sequential,
    /// One OS thread per node, crossbeam-channel frames
    /// ([`ThreadedTopkMonitor`]) — the "real deployment" shape without
    /// leaving the process.
    Threaded,
    /// Node shards behind loopback-TCP sockets, every message a
    /// length-prefixed wire frame ([`SocketTopkMonitor`]). The only engine
    /// whose [`RunMetrics::wire`] ledger is non-zero: frames and bytes
    /// actually written, per channel.
    Socket,
}

impl Engine {
    /// The engine [`Engine::Auto`] currently resolves to.
    pub fn resolve(self) -> Engine {
        match self {
            Engine::Auto => Engine::Sequential,
            other => other,
        }
    }
}

/// Builder for [`MonitorSession`] — the single entry point of the crate.
///
/// ```
/// use topk_core::session::{Engine, MonitorBuilder};
/// use topk_core::{HandlerMode, ResetStrategy};
///
/// let session = MonitorBuilder::new(64, 4)
///     .seed(7)
///     .slack(0)
///     .reset(ResetStrategy::Batched)
///     .handler_mode(HandlerMode::Tight)
///     .engine(Engine::Auto)
///     .build();
/// assert_eq!(session.config().n, 64);
/// ```
#[derive(Debug, Clone)]
pub struct MonitorBuilder {
    cfg: MonitorConfig,
    seed: u64,
    engine: Engine,
    chaos: Option<ChaosPolicy>,
}

impl MonitorBuilder {
    /// Monitor the top `k` of `n` nodes (`1 ≤ k ≤ n`). All other knobs
    /// start at their [`MonitorConfig::new`] defaults, seed 0,
    /// [`Engine::Auto`].
    pub fn new(n: usize, k: usize) -> Self {
        MonitorBuilder {
            cfg: MonitorConfig::new(n, k),
            seed: 0,
            engine: Engine::Auto,
            chaos: None,
        }
    }

    /// Master seed for the per-node protocol RNG streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Approximation slack `ε ≥ 0` (see [`MonitorConfig::slack`]).
    pub fn slack(mut self, slack: u64) -> Self {
        self.cfg.slack = slack;
        self
    }

    /// ε-approximation tolerance of the coordinator's boundary band (see
    /// [`ApproxMode`]). `eps = 0` keeps exact mode — bit-identical to a
    /// builder that never called this knob. `eps > 0` lets the coordinator
    /// absorb k/(k+1) boundary crossings of width ≤ ε by re-centering the
    /// epoch with one broadcast instead of running `FILTERRESET`; answers
    /// stay correct up to ε-indistinguishable boundary values
    /// (arXiv 1601.04448). Negative tolerances are unrepresentable: the
    /// knob takes a `u64` by design.
    ///
    /// Precondition (checked by [`Self::try_build`]): the node-side
    /// hysteresis must stay inside the band, `slack ≤ eps`.
    pub fn epsilon(mut self, eps: u64) -> Self {
        self.cfg = self.cfg.with_epsilon(eps);
        self
    }

    /// `FILTERRESET` strategy (see [`ResetStrategy`]).
    pub fn reset(mut self, reset: ResetStrategy) -> Self {
        self.cfg.reset = reset;
        self
    }

    /// Handler faithfulness (see [`HandlerMode`]).
    pub fn handler_mode(mut self, mode: HandlerMode) -> Self {
        self.cfg.handler_mode = mode;
        self
    }

    /// Protocol announcement policy (see [`BroadcastPolicy`]).
    pub fn policy(mut self, policy: BroadcastPolicy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Execution engine (see [`Engine`]).
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Run the transport through a seeded fault-injection layer (see
    /// [`ChaosPolicy`]). Supported by the threaded engine (in-process frame
    /// faults) and the socket engine (the same classes plus the wire-level
    /// [`topk_net::WireChaos`] faults: torn frames, connection resets,
    /// half-open connections, reconnect storms). [`Engine::Socket`] keeps
    /// its choice; every other engine selection falls back to
    /// [`Engine::Threaded`]. Committed answers, thresholds and events stay
    /// identical to a fault-free twin; the injected faults surface in
    /// [`MonitorSession::recovery`] and the `Retransmit` ledger channel.
    pub fn chaos(mut self, policy: ChaosPolicy) -> Self {
        self.chaos = Some(policy);
        self
    }

    /// The [`MonitorConfig`] this builder will hand the engine.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// The master seed ([`Self::seed`]).
    pub fn build_seed(&self) -> u64 {
        self.seed
    }

    /// The selected engine, unresolved ([`Self::engine`]).
    pub fn build_engine(&self) -> Engine {
        self.engine
    }

    /// The chaos policy, if any ([`Self::chaos`]).
    pub fn build_chaos(&self) -> Option<ChaosPolicy> {
        self.chaos
    }

    /// A copy of this builder retargeted at a `(n, k)` instance of a
    /// different size, every other knob (slack, ε-approximation mode,
    /// reset strategy, handler mode, policy, seed, engine, chaos)
    /// preserved. This is how the sharded serving layer (`topk-serve`)
    /// stamps out per-shard sessions from one template builder — each
    /// shard inherits the template's ε, so per-shard bands compose into
    /// the service-level guarantee.
    pub fn sized(&self, n: usize, k: usize) -> MonitorBuilder {
        let mut cfg = MonitorConfig::new(n, k);
        cfg.policy = self.cfg.policy;
        cfg.handler_mode = self.cfg.handler_mode;
        cfg.slack = self.cfg.slack;
        cfg.reset = self.cfg.reset;
        cfg.approx = self.cfg.approx;
        MonitorBuilder {
            cfg,
            seed: self.seed,
            engine: self.engine,
            chaos: self.chaos,
        }
    }

    /// Assemble the session, or report why the knob combination is invalid.
    ///
    /// Two combinations are rejected (see [`BuildError`]): an ε-band
    /// narrower than the node-side hysteresis (`slack > ε` with approximate
    /// mode enabled), and a [`ChaosPolicy`] on an explicitly selected
    /// [`Engine::Sequential`] (no transport to fault). `ε < 0` needs no
    /// check — the [`Self::epsilon`] knob takes a `u64`, so negative
    /// tolerances are unrepresentable by construction.
    pub fn try_build(&self) -> Result<MonitorSession, BuildError> {
        if let ApproxMode::Band { epsilon } = self.cfg.approx {
            if self.cfg.slack > epsilon {
                return Err(BuildError::SlackExceedsEpsilon {
                    slack: self.cfg.slack,
                    epsilon,
                });
            }
        }
        if self.chaos.is_some() && self.engine == Engine::Sequential {
            return Err(BuildError::ChaosOnSequential);
        }
        Ok(self.assemble())
    }

    /// Assemble the session. Borrowing (not consuming) the builder makes it
    /// a reusable template: call `build` repeatedly for independent
    /// sessions with identical configuration.
    ///
    /// # Panics
    ///
    /// On the invalid knob combinations [`Self::try_build`] rejects.
    pub fn build(&self) -> MonitorSession {
        match self.try_build() {
            Ok(session) => session,
            Err(e) => panic!("invalid monitor configuration: {e}"),
        }
    }

    fn assemble(&self) -> MonitorSession {
        let engine = if let Some(policy) = self.chaos {
            match self.engine.resolve() {
                Engine::Socket => EngineImpl::Socket(Box::new(SocketTopkMonitor::new_chaotic(
                    self.cfg, self.seed, policy,
                ))),
                _ => EngineImpl::Threaded(Box::new(ThreadedTopkMonitor::new_chaotic(
                    self.cfg, self.seed, policy,
                ))),
            }
        } else {
            match self.engine.resolve() {
                Engine::Sequential => {
                    EngineImpl::Sequential(Box::new(TopkMonitor::new(self.cfg, self.seed)))
                }
                Engine::Threaded => {
                    EngineImpl::Threaded(Box::new(ThreadedTopkMonitor::new(self.cfg, self.seed)))
                }
                Engine::Socket => {
                    EngineImpl::Socket(Box::new(SocketTopkMonitor::new(self.cfg, self.seed)))
                }
                Engine::Auto => unreachable!("resolve never returns Auto"),
            }
        };
        MonitorSession {
            engine,
            cfg: self.cfg,
            row: vec![0; self.cfg.n],
            started: false,
            dense_pending: false,
            pending: Vec::new(),
            pending_sorted: true,
            events: Vec::new(),
            order: Vec::new(),
            order_scratch: Vec::new(),
            prev_by_id: Vec::new(),
            cur_by_id: Vec::new(),
            staged_ranks: Vec::new(),
            member_mask: vec![false; self.cfg.n],
            touched_member: false,
            prev_ledger_total: 0,
            last_t: None,
            feed_scratch: Vec::new(),
        }
    }
}

/// Why a [`MonitorBuilder`] knob combination cannot be assembled into a
/// session. Returned by [`MonitorBuilder::try_build`];
/// [`MonitorBuilder::build`] panics with the same message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// ε-approximate mode requires the node-side hysteresis to stay inside
    /// the coordinator's band: `slack ≤ ε`. The coordinator certifies a
    /// band hit from the extrema the filters report; with `slack > ε`
    /// those extrema can themselves be off by more than the band is wide,
    /// voiding the ε-indistinguishability guarantee.
    SlackExceedsEpsilon { slack: u64, epsilon: u64 },
    /// A [`ChaosPolicy`] was combined with an explicitly selected
    /// [`Engine::Sequential`]: the sequential runtime has no transport
    /// layer to inject faults into. Pick [`Engine::Threaded`],
    /// [`Engine::Socket`], or leave [`Engine::Auto`] (which falls back to
    /// the threaded runtime under chaos).
    ChaosOnSequential,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BuildError::SlackExceedsEpsilon { slack, epsilon } => write!(
                f,
                "slack {slack} exceeds the ε-band width {epsilon}; \
                 the ε-indistinguishability guarantee needs slack ≤ ε"
            ),
            BuildError::ChaosOnSequential => write!(
                f,
                "chaos policy on Engine::Sequential: the sequential runtime \
                 has no transport layer to inject faults into"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// The resolved engine behind a session. Every engine is sizeable (the
/// threaded and socket ones especially, with thread handles and socket
/// state), so they live behind boxes to keep the session handle itself
/// small.
enum EngineImpl {
    Sequential(Box<TopkMonitor>),
    Threaded(Box<ThreadedTopkMonitor>),
    Socket(Box<SocketTopkMonitor>),
}

impl EngineImpl {
    fn monitor_mut(&mut self) -> &mut dyn Monitor {
        match self {
            EngineImpl::Sequential(m) => m.as_mut(),
            EngineImpl::Threaded(m) => m.as_mut(),
            EngineImpl::Socket(m) => m.as_mut(),
        }
    }

    fn coordinator(&self) -> &CoordinatorMachine {
        match self {
            EngineImpl::Sequential(m) => m.coordinator(),
            EngineImpl::Threaded(m) => m.coordinator(),
            EngineImpl::Socket(m) => m.coordinator(),
        }
    }

    fn ledger(&self) -> LedgerSnapshot {
        match self {
            EngineImpl::Sequential(m) => m.ledger(),
            EngineImpl::Threaded(m) => m.ledger(),
            EngineImpl::Socket(m) => m.ledger(),
        }
    }

    fn silent_steps(&self) -> u64 {
        match self {
            EngineImpl::Sequential(m) => m.silent_steps(),
            EngineImpl::Threaded(m) => m.silent_steps(),
            EngineImpl::Socket(m) => m.silent_steps(),
        }
    }

    fn micro_rounds_run(&self) -> u64 {
        match self {
            EngineImpl::Sequential(m) => m.micro_rounds_run(),
            EngineImpl::Threaded(m) => m.micro_rounds_run(),
            EngineImpl::Socket(m) => m.micro_rounds_run(),
        }
    }
}

/// A running push-based monitoring session — the stable public handle over
/// Algorithm 1 on any [`Engine`].
///
/// Lifecycle per time step: buffer observations with
/// [`update`](Self::update) / [`update_batch`](Self::update_batch) (or pull
/// them from a [`ValueFeed`] with [`ingest`](Self::ingest)), then commit
/// with [`advance`](Self::advance) and react to the returned
/// [`TopkEvent`]s. Nodes that never received an update observe `0`.
///
/// Updates are *observations*, not messages: buffering them models the
/// step's new values arriving at the distributed nodes. What the protocol
/// actually communicates is decided by the filters, exactly as in the
/// paper, and is what [`ledger`](Self::ledger) counts.
pub struct MonitorSession {
    engine: EngineImpl,
    cfg: MonitorConfig,
    /// Committed value row (updated by the commit itself, so it always
    /// mirrors what the engine has seen).
    row: Vec<Value>,
    /// Whether the first step has been committed (engines need a dense
    /// first row).
    started: bool,
    /// `true` when a whole-row update is pending (dense route forced).
    dense_pending: bool,
    /// Buffered `(id, value)` updates since the last commit.
    pending: Vec<(NodeId, Value)>,
    /// `pending` is id-sorted as pushed (skip the commit sort when true).
    pending_sorted: bool,
    /// Reusable event buffer; `advance` returns a borrow of it.
    events: Vec<TopkEvent>,
    /// Current members by rank (index 0 = rank 1 = largest value).
    order: Vec<NodeId>,
    /// Scratch: next step's order during the membership diff.
    order_scratch: Vec<NodeId>,
    /// Scratch: `(id, rank)` of the previous / current order, id-sorted.
    prev_by_id: Vec<(NodeId, usize)>,
    cur_by_id: Vec<(NodeId, usize)>,
    /// Scratch: rank-sorted `Entered` / `RankChanged` staging.
    staged_ranks: Vec<(usize, TopkEvent)>,
    /// O(1) membership, kept in lockstep with `order`.
    member_mask: Vec<bool>,
    /// A buffered update touched a current member since the last commit
    /// (rank events can occur without any message traffic).
    touched_member: bool,
    /// Ledger total after the previous commit — membership and threshold
    /// provably cannot change without message traffic, so an unchanged
    /// total skips all event derivation.
    prev_ledger_total: u64,
    last_t: Option<u64>,
    /// Scratch for [`Self::ingest`].
    feed_scratch: Vec<(NodeId, Value)>,
}

impl MonitorSession {
    /// Buffer one observation: node `id` will observe `value` when the next
    /// [`advance`](Self::advance) commits. Later updates for the same node
    /// within one step win.
    pub fn update(&mut self, id: NodeId, value: Value) {
        assert!(id.idx() < self.cfg.n, "node {id} out of range");
        if let Some(&(last, _)) = self.pending.last() {
            self.pending_sorted &= last < id;
        }
        self.pending.push((id, value));
    }

    /// Buffer a batch of observations (any order, duplicates allowed —
    /// last write per node wins).
    pub fn update_batch(&mut self, updates: impl IntoIterator<Item = (NodeId, Value)>) {
        for (id, value) in updates {
            self.update(id, value);
        }
    }

    /// Buffer a whole-row update: node `i` observes `values[i]`. Forces the
    /// dense commit route; point updates buffered in the same step are
    /// applied *on top* regardless of call order.
    pub fn update_row(&mut self, values: &[Value]) {
        assert_eq!(values.len(), self.cfg.n, "one value per node");
        self.row.copy_from_slice(values);
        self.dense_pending = true;
        self.touched_member = true;
    }

    /// Pull one step's changes from a [`ValueFeed`] into the buffer (the
    /// generator-side adapter: any `WorkloadSpec`-built feed drives a
    /// session directly). `t` must be the step the next `advance` commits.
    pub fn ingest(&mut self, feed: &mut dyn ValueFeed, t: u64) {
        assert_eq!(feed.n(), self.cfg.n, "feed size must match session");
        let mut scratch = std::mem::take(&mut self.feed_scratch);
        feed.fill_delta(t, &mut scratch);
        self.update_batch(scratch.iter().copied());
        self.feed_scratch = scratch;
    }

    /// Commit the buffered updates as time step `t` (strictly increasing),
    /// run the protocol exchange, and return the step's events.
    ///
    /// Routing: the first commit and whole-row updates take the engine's
    /// dense path (a diff against its cached row); small batches — at most
    /// half the fleet — take the sparse path, so a silent tick costs
    /// `O(#changed + #engaged)`. Both paths are bit-identical, and the
    /// returned buffer is reused across steps (no steady-state allocation).
    pub fn advance(&mut self, t: u64) -> &[TopkEvent] {
        assert!(
            self.last_t.is_none_or(|last| t > last),
            "advance requires strictly increasing t (last {:?}, got {t})",
            self.last_t
        );
        self.commit_pending();

        let first = !self.started;
        if first || self.dense_pending || 2 * self.pending.len() > self.cfg.n {
            // Dense diff (and the mandatory dense first step).
            let row = std::mem::take(&mut self.row);
            self.engine.monitor_mut().step(t, &row);
            self.row = row;
        } else {
            let pending = std::mem::take(&mut self.pending);
            self.engine.monitor_mut().step_sparse(t, &pending);
            self.pending = pending;
        }
        self.started = true;
        self.dense_pending = false;
        self.pending.clear();
        self.pending_sorted = true;
        self.last_t = Some(t);

        // Protocol-level events straight from the monitor's cursor.
        self.events.clear();
        let mut events = std::mem::take(&mut self.events);
        self.engine.monitor_mut().drain_events(t, &mut events);
        self.events = events;

        // Membership / rank events, derived — but only when they can have
        // changed: any membership or threshold change costs messages, and
        // silent rank shuffles require an update touching a member.
        let total = self.engine.ledger().total();
        if first || total != self.prev_ledger_total || self.touched_member {
            self.derive_membership_events(t);
        }
        self.prev_ledger_total = total;
        self.touched_member = false;
        &self.events
    }

    /// Sort (stable) + last-wins dedup the pending buffer, patch it onto
    /// the committed row, and flag touched members. A buffer pushed in
    /// strictly ascending id order (`pending_sorted` — every feed-driven
    /// ingest) is duplicate-free by construction, so both passes are
    /// skipped on the hot path.
    fn commit_pending(&mut self) {
        if !self.pending_sorted {
            self.pending.sort_by_key(|&(id, _)| id);
            let mut w = 0;
            for r in 0..self.pending.len() {
                let entry = self.pending[r];
                if w > 0 && self.pending[w - 1].0 == entry.0 {
                    self.pending[w - 1] = entry;
                } else {
                    self.pending[w] = entry;
                    w += 1;
                }
            }
            self.pending.truncate(w);
        }
        debug_assert!(self.pending.windows(2).all(|w| w[0].0 < w[1].0));
        for &(id, v) in &self.pending {
            self.touched_member |= self.member_mask[id.idx()];
            self.row[id.idx()] = v;
        }
    }

    /// Recompute the rank order from the engine's answer and the committed
    /// row; diff against the previous order into `Left` / `Entered` /
    /// `RankChanged` events (ranks are 1-based by descending value, ties by
    /// ascending id).
    fn derive_membership_events(&mut self, t: u64) {
        let members = self.engine.coordinator().topk();
        self.order_scratch.clear();
        self.order_scratch.extend_from_slice(members);
        let row = &self.row;
        self.order_scratch
            .sort_by(|a, b| row[b.idx()].cmp(&row[a.idx()]).then(a.cmp(b)));

        self.prev_by_id.clear();
        self.prev_by_id
            .extend(self.order.iter().enumerate().map(|(i, &id)| (id, i + 1)));
        self.prev_by_id.sort_unstable_by_key(|&(id, _)| id);
        self.cur_by_id.clear();
        self.cur_by_id.extend(
            self.order_scratch
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, i + 1)),
        );
        self.cur_by_id.sort_unstable_by_key(|&(id, _)| id);

        // Merge the two id-sorted rank maps. Lefts go straight out
        // (ascending id); Entered/RankChanged are staged and emitted in
        // rank order.
        self.staged_ranks.clear();
        let (mut p, mut c) = (0, 0);
        while p < self.prev_by_id.len() || c < self.cur_by_id.len() {
            match (self.prev_by_id.get(p), self.cur_by_id.get(c)) {
                (Some(&(pid, _)), Some(&(cid, rank))) if pid == cid => {
                    let (_, from) = self.prev_by_id[p];
                    if from != rank {
                        self.staged_ranks.push((
                            rank,
                            TopkEvent::RankChanged {
                                t,
                                id: cid,
                                from,
                                to: rank,
                            },
                        ));
                    }
                    p += 1;
                    c += 1;
                }
                (Some(&(pid, _)), Some(&(cid, _))) if pid < cid => {
                    self.events.push(TopkEvent::Left { t, id: pid });
                    self.member_mask[pid.idx()] = false;
                    p += 1;
                }
                (Some(&(pid, _)), None) => {
                    self.events.push(TopkEvent::Left { t, id: pid });
                    self.member_mask[pid.idx()] = false;
                    p += 1;
                }
                (_, Some(&(cid, rank))) => {
                    self.staged_ranks
                        .push((rank, TopkEvent::Entered { t, id: cid, rank }));
                    self.member_mask[cid.idx()] = true;
                    c += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        // Entered before RankChanged, each in ascending rank.
        self.staged_ranks
            .sort_unstable_by_key(|&(rank, e)| (!matches!(e, TopkEvent::Entered { .. }), rank));
        self.events
            .extend(self.staged_ranks.iter().map(|&(_, e)| e));

        std::mem::swap(&mut self.order, &mut self.order_scratch);
    }

    /// Drive the session over a [`ValueFeed`] for `steps` consecutive time
    /// steps (continuing after the last committed `t`); returns the ledger
    /// delta. The per-step events remain queryable only for the final step
    /// (via [`events`](Self::events)) — use the `ingest` + `advance` loop
    /// to react to every step.
    pub fn run_feed(&mut self, feed: &mut dyn ValueFeed, steps: u64) -> LedgerSnapshot {
        let before = self.engine.ledger();
        let start = self.last_t.map_or(0, |t| t + 1);
        for t in start..start + steps {
            self.ingest(feed, t);
            self.advance(t);
        }
        self.engine.ledger().since(&before)
    }

    // ── cheap queries ────────────────────────────────────────────────

    /// Current answer: top-k node ids, sorted ascending (borrowed — no
    /// allocation, unlike [`Monitor::topk`]).
    pub fn topk(&self) -> &[NodeId] {
        self.engine.coordinator().topk()
    }

    /// Current members ordered by rank (index 0 = rank 1 = largest value,
    /// ties by ascending id) — the order the session's rank events speak
    /// about.
    pub fn topk_by_rank(&self) -> &[NodeId] {
        &self.order
    }

    /// O(1): is `id` currently monitored as top-k?
    pub fn in_topk(&self, id: NodeId) -> bool {
        self.member_mask[id.idx()]
    }

    /// O(1): the committed value of node `id` (what the engine has seen;
    /// buffered updates not yet committed by [`advance`](Self::advance)
    /// are not reflected). Nodes never updated observe `0`.
    pub fn value(&self, id: NodeId) -> Value {
        self.row[id.idx()]
    }

    /// The whole committed value row (`n` entries, indexed by node id).
    /// The serving layer reads member values from here when it rebuilds a
    /// shard's merge candidates.
    pub fn committed_row(&self) -> &[Value] {
        &self.row
    }

    /// The shared filter threshold `M`, once initialized.
    pub fn threshold(&self) -> Option<Value> {
        self.engine.coordinator().current_threshold()
    }

    /// Phase-attributed protocol counters.
    pub fn metrics(&self) -> &RunMetrics {
        self.engine.coordinator().metrics()
    }

    /// Transport fault-injection and recovery counters (`None` on the
    /// sequential engine; all-zero on a threaded or socket engine without a
    /// [`ChaosPolicy`]).
    pub fn recovery(&self) -> Option<&RecoveryMetrics> {
        match &self.engine {
            EngineImpl::Sequential(_) => None,
            EngineImpl::Threaded(m) => Some(m.recovery()),
            EngineImpl::Socket(m) => Some(m.recovery()),
        }
    }

    /// The physical wire ledger (`None` on the in-process engines; the
    /// socket engine counts every frame and byte it writes, per channel).
    /// The same block is mirrored into [`RunMetrics::wire`] at each step.
    pub fn wire(&self) -> Option<&topk_net::ledger::WireMetrics> {
        match &self.engine {
            EngineImpl::Sequential(_) | EngineImpl::Threaded(_) => None,
            EngineImpl::Socket(m) => Some(m.wire()),
        }
    }

    /// Message counters (model cost).
    pub fn ledger(&self) -> LedgerSnapshot {
        self.engine.ledger()
    }

    /// The events of the most recent [`advance`](Self::advance).
    pub fn events(&self) -> &[TopkEvent] {
        &self.events
    }

    /// The configuration this session runs.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.cfg.n
    }

    /// Monitored positions.
    pub fn k(&self) -> usize {
        self.cfg.k
    }

    /// The engine this session resolved to.
    pub fn engine(&self) -> Engine {
        match self.engine {
            EngineImpl::Sequential(_) => Engine::Sequential,
            EngineImpl::Threaded(_) => Engine::Threaded,
            EngineImpl::Socket(_) => Engine::Socket,
        }
    }

    /// The last committed time step.
    pub fn last_t(&self) -> Option<u64> {
        self.last_t
    }

    /// Steps that exchanged no message.
    pub fn silent_steps(&self) -> u64 {
        self.engine.silent_steps()
    }

    /// Coordinator micro-rounds executed so far (identical accounting on
    /// both engines).
    pub fn micro_rounds_run(&self) -> u64 {
        self.engine.micro_rounds_run()
    }

    /// Transport sync frames (`None` on the sequential engine, which has no
    /// transport layer). Charged at dispatch intent on both transports, so
    /// the threaded and socket counts are bit-identical.
    pub fn sync_frames(&self) -> Option<u64> {
        match &self.engine {
            EngineImpl::Sequential(_) => None,
            EngineImpl::Threaded(m) => Some(m.sync_frames()),
            EngineImpl::Socket(m) => Some(m.sync_frames()),
        }
    }

    /// Capacity of the reusable event buffer — the zero-alloc steady-state
    /// witness asserted by `tests/session_events.rs` (it must stop growing
    /// once the session has warmed up).
    pub fn event_capacity(&self) -> usize {
        self.events.capacity()
    }

    /// Tear the session down, returning the underlying [`Monitor`] (joins
    /// node threads on the threaded engine via its `Drop`).
    pub fn into_monitor(self) -> Box<dyn Monitor> {
        match self.engine {
            EngineImpl::Sequential(m) => m,
            EngineImpl::Threaded(m) => m,
            EngineImpl::Socket(m) => m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_net::id::true_topk;

    fn drain_to_vec(events: &[TopkEvent]) -> Vec<TopkEvent> {
        events.to_vec()
    }

    #[test]
    fn builder_defaults_and_knobs() {
        let b = MonitorBuilder::new(10, 3)
            .seed(9)
            .slack(5)
            .reset(ResetStrategy::Legacy)
            .handler_mode(HandlerMode::Faithful)
            .policy(BroadcastPolicy::EveryRound)
            .engine(Engine::Sequential);
        assert_eq!(b.config().slack, 5);
        assert_eq!(b.config().reset, ResetStrategy::Legacy);
        assert_eq!(b.config().handler_mode, HandlerMode::Faithful);
        assert_eq!(b.config().policy, BroadcastPolicy::EveryRound);
        let s = b.build();
        assert_eq!(s.engine(), Engine::Sequential);
        assert_eq!((s.n(), s.k()), (10, 3));
        assert_eq!(Engine::Auto.resolve(), Engine::Sequential);
    }

    #[test]
    fn epsilon_knob_propagates_and_sized_preserves_it() {
        let b = MonitorBuilder::new(32, 4).seed(2).epsilon(12);
        assert_eq!(b.config().approx, ApproxMode::Band { epsilon: 12 });
        let shard = b.sized(8, 2);
        assert_eq!(
            shard.config().approx,
            ApproxMode::Band { epsilon: 12 },
            "sized() must carry the ε knob to per-shard builders"
        );
        assert_eq!(
            b.epsilon(0).config().approx,
            ApproxMode::Exact,
            "ε = 0 normalizes back to exact mode"
        );
    }

    #[test]
    fn try_build_rejects_slack_wider_than_band() {
        let err = match MonitorBuilder::new(8, 2).epsilon(3).slack(5).try_build() {
            Err(e) => e,
            Ok(_) => panic!("slack 5 > ε 3 must be rejected"),
        };
        assert_eq!(
            err,
            BuildError::SlackExceedsEpsilon {
                slack: 5,
                epsilon: 3
            }
        );
        assert!(!err.to_string().is_empty());
        // slack ≤ ε is fine, and exact mode never checks slack against ε.
        assert!(MonitorBuilder::new(8, 2)
            .epsilon(3)
            .slack(3)
            .try_build()
            .is_ok());
        assert!(MonitorBuilder::new(8, 2).slack(50).try_build().is_ok());
    }

    #[test]
    fn try_build_rejects_chaos_on_explicit_sequential() {
        let policy = ChaosPolicy::from_seed(5);
        let err = match MonitorBuilder::new(4, 1)
            .engine(Engine::Sequential)
            .chaos(policy)
            .try_build()
        {
            Err(e) => e,
            Ok(_) => panic!("chaos on explicit Sequential must be rejected"),
        };
        assert_eq!(err, BuildError::ChaosOnSequential);
        // Engine::Auto keeps the documented fallback to Threaded.
        let s = MonitorBuilder::new(4, 1).chaos(policy).try_build().unwrap();
        assert_eq!(s.engine(), Engine::Threaded);
    }

    #[test]
    #[should_panic(expected = "invalid monitor configuration")]
    fn build_panics_on_invalid_combination() {
        let _ = MonitorBuilder::new(8, 2).epsilon(1).slack(2).build();
    }

    #[test]
    fn push_updates_produce_membership_events() {
        let mut s = MonitorBuilder::new(4, 2).seed(42).build();
        s.update_batch([
            (NodeId(0), 20),
            (NodeId(1), 100),
            (NodeId(2), 40),
            (NodeId(3), 80),
        ]);
        let events = drain_to_vec(s.advance(0));
        assert!(events.contains(&TopkEvent::ResetCompleted { t: 0 }));
        assert!(events.contains(&TopkEvent::Entered {
            t: 0,
            id: NodeId(1),
            rank: 1
        }));
        assert!(events.contains(&TopkEvent::Entered {
            t: 0,
            id: NodeId(3),
            rank: 2
        }));
        assert_eq!(s.topk(), &[NodeId(1), NodeId(3)]);
        assert_eq!(s.topk_by_rank(), &[NodeId(1), NodeId(3)]);
        assert!(s.in_topk(NodeId(1)) && !s.in_topk(NodeId(0)));

        // n2 overtakes n3.
        s.update(NodeId(2), 500);
        let events = drain_to_vec(s.advance(1));
        assert!(events.contains(&TopkEvent::Left {
            t: 1,
            id: NodeId(3)
        }));
        assert!(events.contains(&TopkEvent::Entered {
            t: 1,
            id: NodeId(2),
            rank: 1
        }));
        assert_eq!(s.topk(), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn silent_ticks_emit_nothing_and_reuse_the_buffer() {
        let mut s = MonitorBuilder::new(6, 2).seed(7).build();
        s.update_row(&[10, 60, 30, 50, 20, 40]);
        s.advance(0);
        let cap = s.event_capacity();
        for t in 1..100 {
            assert!(s.advance(t).is_empty(), "no updates ⇒ no events");
        }
        assert_eq!(s.event_capacity(), cap, "steady state must not allocate");
        assert_eq!(s.silent_steps(), 99);
    }

    #[test]
    fn rank_changes_surface_without_messages() {
        let mut s = MonitorBuilder::new(4, 2).seed(3).build();
        s.update_row(&[20, 100, 40, 80]);
        s.advance(0);
        assert_eq!(s.topk_by_rank(), &[NodeId(1), NodeId(3)]);
        let before = s.ledger().total();
        // Swap the two members' relative order strictly above the threshold:
        // zero messages, but ranks move.
        s.update_batch([(NodeId(1), 81), (NodeId(3), 99)]);
        let events = drain_to_vec(s.advance(1));
        assert_eq!(s.ledger().total(), before, "within-filter moves are free");
        assert_eq!(
            events,
            vec![
                TopkEvent::RankChanged {
                    t: 1,
                    id: NodeId(3),
                    from: 2,
                    to: 1
                },
                TopkEvent::RankChanged {
                    t: 1,
                    id: NodeId(1),
                    from: 1,
                    to: 2
                },
            ]
        );
        assert_eq!(s.topk_by_rank(), &[NodeId(3), NodeId(1)]);
    }

    #[test]
    fn last_write_wins_within_a_step() {
        let mut s = MonitorBuilder::new(3, 1).seed(1).build();
        s.update_batch([(NodeId(0), 5), (NodeId(1), 50), (NodeId(2), 10)]);
        s.update(NodeId(1), 1); // overrides the 50
        s.update(NodeId(2), 99);
        s.advance(0);
        assert_eq!(s.topk(), &[NodeId(2)]);
    }

    #[test]
    fn feed_adapter_matches_legacy_drive() {
        use topk_streams::WorkloadSpec;
        let spec = WorkloadSpec::default_walk(12);
        let cfg = MonitorConfig::new(12, 3);
        let mut legacy = TopkMonitor::new(cfg, 5);
        let mut legacy_feed = spec.build(9);
        let mut row = vec![0u64; 12];

        let mut s = MonitorBuilder::new(12, 3).seed(5).build();
        let mut feed = spec.build(9);
        for t in 0..200 {
            legacy_feed.fill_step(t, &mut row);
            legacy.step(t, &row);
            s.ingest(&mut feed, t);
            s.advance(t);
            assert_eq!(s.topk(), legacy.topk().as_slice(), "t={t}");
        }
        assert_eq!(s.ledger().total(), legacy.ledger().total());
        assert_eq!(s.threshold(), legacy.coordinator().current_threshold());
    }

    #[test]
    fn run_feed_continues_time() {
        use topk_streams::WorkloadSpec;
        let spec = WorkloadSpec::default_walk(8);
        let mut s = MonitorBuilder::new(8, 2).seed(4).build();
        let mut feed = spec.build(2);
        s.run_feed(&mut feed, 50);
        assert_eq!(s.last_t(), Some(49));
        s.run_feed(&mut feed, 10);
        assert_eq!(s.last_t(), Some(59));
        let mut row = vec![0u64; 8];
        let mut twin = spec.build(2);
        for t in 0..60 {
            twin.fill_step(t, &mut row);
        }
        assert!(crate::monitor::is_valid_topk(&row, s.topk()));
    }

    #[test]
    fn threaded_engine_is_bit_identical() {
        let mut seq = MonitorBuilder::new(8, 3)
            .seed(11)
            .engine(Engine::Sequential)
            .build();
        let mut thr = MonitorBuilder::new(8, 3)
            .seed(11)
            .engine(Engine::Threaded)
            .build();
        let rows: [&[u64]; 4] = [
            &[5, 80, 20, 70, 10, 60, 30, 40],
            &[5, 80, 20, 70, 10, 60, 30, 40],
            &[90, 80, 20, 70, 10, 60, 30, 40],
            &[90, 10, 20, 70, 95, 60, 30, 40],
        ];
        for (t, row) in rows.iter().enumerate() {
            seq.update_row(row);
            thr.update_row(row);
            let (a, b) = (
                drain_to_vec(seq.advance(t as u64)),
                drain_to_vec(thr.advance(t as u64)),
            );
            assert_eq!(a, b, "t={t}: event streams diverged");
            assert_eq!(seq.topk(), thr.topk());
        }
        assert_eq!(seq.ledger().total(), thr.ledger().total());
        assert_eq!(seq.micro_rounds_run(), thr.micro_rounds_run());
        assert!(seq.sync_frames().is_none());
        assert!(thr.sync_frames().is_some());
        assert_eq!(
            seq.topk().to_vec(),
            true_topk(rows[3], 3),
            "strict boundary ⇒ unique answer"
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_t_rejected() {
        let mut s = MonitorBuilder::new(2, 1).build();
        s.advance(5);
        s.advance(5);
    }
}
