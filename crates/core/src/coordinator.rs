//! The coordinator-side state machine of Algorithm 1.
//!
//! Per time step the coordinator moves through up to four phases:
//!
//! 1. **Violation window** (rounds `0..=max(⌈log k⌉, ⌈log(n−k)⌉)`): collect
//!    the reports of the concurrently running violation-phase
//!    MINIMUMPROTOCOL(k) / MAXIMUMPROTOCOL(n−k) (lines 2–10), broadcasting
//!    running extrema so losing participants deactivate. Violator-only
//!    extrema are *exact* for their side: every violator sits strictly
//!    beyond the shared threshold `M`, every non-violator at or within it.
//! 2. **Handler protocol** (lines 22–26): if one side is missing (or in
//!    `Faithful` mode per the pseudocode), run a full-group protocol over
//!    that side.
//! 3. **Conclusion** (lines 27–34): fold the exact min/max into the
//!    [`GapTracker`]; either broadcast the new midpoint threshold or
//! 4. **FILTERRESET** (lines 36–42) — one of two strategies, selected by
//!    [`crate::config::ResetStrategy`]:
//!    * **Batched** (default): a single k-select sweep. Every node joins one
//!      MAXIMUMPROTOCOL(n)-style sampling schedule; the coordinator keeps
//!      the running top-`k+1` candidate set ([`KSelectAggregator`]) and
//!      broadcasts the current `(k+1)`-th best as the deactivation bar
//!      (`ResetBar`), then announces the `k+1` winners rank by rank and
//!      concludes with the threshold broadcast. `⌈log₂(n/(k+1))⌉ + k + 3`
//!      coordinator rounds (the sampling schedule starts at `(k+1)/n`) and
//!      `O(k·log(n/k) + log n)` expected up-messages.
//!    * **Legacy** (the pseudocode, literally): `k+1` sequential iterations
//!      of MAXIMUMPROTOCOL(n), winner announcements doubling as
//!      next-iteration start signals — `(k+1)·(⌈log₂n⌉+1) + 1` rounds and
//!      `(k+1)·O(log n)` expected up-messages.
//!
//!    Both strategies are Las Vegas-exact and produce identical winners,
//!    membership and thresholds (pinned by the strategy matrix in
//!    `tests/runtime_conformance.rs`); round counts are pinned by
//!    `crates/core/tests/reset_rounds.rs` via [`RunMetrics::reset_rounds`].

use topk_net::behavior::{CoordOut, CoordinatorBehavior, RoundScope};
use topk_net::id::{midpoint_floor, NodeId};
use topk_net::rng::log2_ceil;
use topk_net::wire::Report;

use topk_filters::tracker::{GapTracker, GapUpdate};
use topk_proto::extremum::{MaxAggregator, MinAggregator};
use topk_proto::kselect::KSelectAggregator;

use crate::codec::{self, CoordSnapshot};
use crate::config::{HandlerMode, MonitorConfig, ResetStrategy};
use crate::metrics::RunMetrics;
use crate::msg::{DownMsg, UpMsg};

/// Per-step phase of the coordinator.
enum Phase {
    /// Step concluded (or degenerate configuration).
    Done,
    /// First step ever: initialization reset pending (line 1).
    NeedInit,
    /// Collecting violation-phase protocol reports.
    ViolationWindow {
        min_agg: MinAggregator,
        max_agg: MaxAggregator,
    },
    /// Handler-initiated MINIMUMPROTOCOL(k) over all top-k.
    HandlerMin {
        agg: MinAggregator,
        start_m: u32,
        carried_max: u64,
    },
    /// Handler-initiated MAXIMUMPROTOCOL(n−k) over all non-top-k.
    HandlerMax {
        agg: MaxAggregator,
        start_m: u32,
        carried_min: u64,
    },
    /// Legacy FILTERRESET iteration in progress (one of `k+1` sequential
    /// maximum searches); winners accumulate in the coordinator-owned
    /// `reset_winners` buffer.
    Reset { agg: MaxAggregator, start_m: u32 },
    /// Batched FILTERRESET: single k-select sweep (the coordinator-owned
    /// `ks_agg`), then rank-by-rank winner announcements
    /// (`reset_announced` = winners broadcast so far).
    ResetBatched { start_m: u32 },
}

/// The monitoring coordinator.
pub struct CoordinatorMachine {
    cfg: MonitorConfig,
    /// Current answer: top-k node ids, sorted ascending.
    topk_ids: Vec<NodeId>,
    tracker: Option<GapTracker>,
    /// The threshold `M` the nodes currently hold (informational).
    last_threshold: Option<u64>,
    phase: Phase,
    /// Batched-reset sweep state, coordinator-owned so repeated resets
    /// reuse the candidate buffer (zero-allocation reset discipline —
    /// pinned by `tests/alloc_discipline.rs`).
    ks_agg: KSelectAggregator,
    /// Legacy-reset winner accumulator (same reuse discipline).
    reset_winners: Vec<Report>,
    /// Winners announced so far in the batched conclusion.
    reset_announced: usize,
    metrics: RunMetrics,
    initialized: bool,
    l_min: u32,
    l_max: u32,
    l_viol: u32,
    l_n: u32,
    /// Final participant round of the batched k-select sweep:
    /// `⌈log₂(max(1, ⌊n/(k+1)⌋))⌉` (the schedule starts at `(k+1)/n`).
    l_ks: u32,
}

impl CoordinatorMachine {
    pub fn new(cfg: MonitorConfig) -> Self {
        let l_min = log2_ceil(cfg.k as u64);
        let l_max = log2_ceil((cfg.n - cfg.k).max(1) as u64);
        let topk_ids = if cfg.is_degenerate() {
            (0..cfg.n as u32).map(NodeId).collect()
        } else {
            Vec::new()
        };
        CoordinatorMachine {
            cfg,
            topk_ids,
            tracker: None,
            last_threshold: None,
            phase: Phase::Done,
            ks_agg: KSelectAggregator::new(cfg.k + 1, cfg.n as u64),
            reset_winners: Vec::with_capacity(cfg.k + 2),
            reset_announced: 0,
            metrics: RunMetrics::default(),
            initialized: cfg.is_degenerate(),
            l_min,
            l_max,
            l_viol: l_min.max(l_max),
            l_n: log2_ceil(cfg.n as u64),
            l_ks: log2_ceil(topk_proto::kselect::sampling_bound(cfg.k + 1, cfg.n as u64)),
        }
    }

    /// Phase-attributed event counters.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// The current `T+ / T−` tracker (None before initialization).
    pub fn tracker(&self) -> Option<&GapTracker> {
        self.tracker.as_ref()
    }

    /// Current filter threshold the nodes hold, if any.
    pub fn current_threshold(&self) -> Option<u64> {
        self.last_threshold
    }

    fn begin_reset(&mut self, m: u32, out: &mut CoordOut<DownMsg>) {
        out.broadcasts.push(DownMsg::ResetStart);
        self.metrics.reset_bcast += 1;
        self.metrics.reset_rounds += 1;
        self.reset_winners.clear();
        self.reset_announced = 0;
        self.phase = match self.cfg.reset {
            ResetStrategy::Batched => {
                self.ks_agg.clear();
                Phase::ResetBatched { start_m: m + 1 }
            }
            ResetStrategy::Legacy => Phase::Reset {
                agg: MaxAggregator::new(self.cfg.n as u64),
                start_m: m + 1,
            },
        };
    }

    /// Lines 40–41, shared by both reset strategies: derive the new epoch
    /// from the reset's `k+1` winners (best-first), update the answer and
    /// tracker in place (the answer buffer is reused across resets), and
    /// emit `ResetDone`.
    fn conclude_reset(&mut self, t: u64, winners_from_sweep: bool, out: &mut CoordOut<DownMsg>) {
        let k = self.cfg.k;
        let winners: &[Report] = if winners_from_sweep {
            self.ks_agg.winners()
        } else {
            &self.reset_winners
        };
        let kth = winners[k - 1];
        let k1 = winners[k];
        let thresh = midpoint_floor(kth.value, k1.value);
        self.topk_ids.clear();
        self.topk_ids.extend(winners[..k].iter().map(|w| w.id));
        self.topk_ids.sort_unstable();
        self.tracker = Some(GapTracker::start_epoch(t, kth.value, k1.value));
        out.broadcasts
            .push(DownMsg::ResetDone { threshold: thresh });
        self.last_threshold = Some(thresh);
        self.metrics.reset_bcast += 1;
        self.initialized = true;
        self.phase = Phase::Done;
    }

    /// Lines 27–34, ε-extended: fold the exact current extrema into the
    /// tracker and either rebroadcast a midpoint, absorb an in-band
    /// boundary crossing with one band broadcast (approximate mode,
    /// arXiv 1601.04448 — pay O(1) where exact pays a reset), or start a
    /// reset. `ε = 0` makes the band branch unreachable, so exact mode is
    /// untouched bit for bit.
    fn conclude_handler(&mut self, m: u32, min_v: u64, max_v: u64, out: &mut CoordOut<DownMsg>) {
        let eps = self.cfg.approx.epsilon();
        let tracker = self.tracker.as_mut().expect("initialized");
        match tracker.absorb_banded(min_v, max_v, eps) {
            GapUpdate::Midpoint(thresh) => {
                out.broadcasts.push(DownMsg::Midpoint(thresh));
                self.last_threshold = Some(thresh);
                self.metrics.midpoint_updates += 1;
                self.metrics.midpoint_bcast += 1;
                self.phase = Phase::Done;
            }
            GapUpdate::Band(thresh) => {
                // One full-scope broadcast (every node must adopt the common
                // threshold, exactly like a midpoint): the whole cost of a
                // boundary flip that exact mode answers with FILTERRESET.
                out.broadcasts.push(DownMsg::Band(thresh));
                self.last_threshold = Some(thresh);
                self.metrics.band_hits += 1;
                self.metrics.band_bcast += 1;
                self.phase = Phase::Done;
            }
            GapUpdate::ResetRequired => {
                self.metrics.resets += 1;
                self.begin_reset(m, out);
            }
        }
    }
}

impl CoordinatorBehavior for CoordinatorMachine {
    type Up = UpMsg;
    type Down = DownMsg;

    fn begin_step(&mut self, _t: u64) {
        self.metrics.steps += 1;
        if self.cfg.is_degenerate() {
            self.phase = Phase::Done;
        } else if !self.initialized {
            self.phase = Phase::NeedInit;
        } else {
            self.phase = Phase::ViolationWindow {
                min_agg: MinAggregator::new(self.cfg.k as u64),
                max_agg: MaxAggregator::new((self.cfg.n - self.cfg.k) as u64),
            };
        }
    }

    fn try_skip_silent_step(&mut self, _t: u64) -> bool {
        if self.cfg.is_degenerate() {
            return true;
        }
        if self.initialized {
            // No engaged node and no report: the violation window would be
            // silent and the step free — provably nothing to do.
            self.phase = Phase::Done;
            true
        } else {
            false
        }
    }

    fn micro_round(
        &mut self,
        t: u64,
        m: u32,
        ups: &mut Vec<(NodeId, UpMsg)>,
        out: &mut CoordOut<DownMsg>,
    ) {
        debug_assert!(out.is_empty(), "out arrives cleared");
        let policy = self.cfg.policy;
        match &mut self.phase {
            Phase::Done => {
                debug_assert!(ups.is_empty(), "no reports expected after conclusion");
            }
            Phase::NeedInit => {
                debug_assert_eq!(m, 0, "initialization starts the very first round");
                debug_assert!(ups.is_empty(), "nodes are silent before initialization");
                self.begin_reset(m, out);
            }
            Phase::ViolationWindow { min_agg, max_agg } => {
                for (_, up) in ups.drain(..) {
                    match up {
                        UpMsg::ViolMin(r) => {
                            min_agg.absorb(r);
                            self.metrics.viol_up += 1;
                        }
                        UpMsg::ViolMax(r) => {
                            max_agg.absorb(r);
                            self.metrics.viol_up += 1;
                        }
                        other => debug_assert!(false, "unexpected report {other:?}"),
                    }
                }
                // Round announcements (useful only while the respective
                // protocol still has rounds to run).
                if m < self.l_min {
                    if let Some(a) = min_agg.pending_announcement(policy) {
                        out.broadcasts.push(DownMsg::ViolMinAnnounce(a));
                        out.scope = RoundScope::Engaged;
                        min_agg.mark_announced();
                        self.metrics.viol_bcast += 1;
                    }
                }
                if m < self.l_max {
                    if let Some(a) = max_agg.pending_announcement(policy) {
                        out.broadcasts.push(DownMsg::ViolMaxAnnounce(a));
                        out.scope = RoundScope::Engaged;
                        max_agg.mark_announced();
                        self.metrics.viol_bcast += 1;
                    }
                }
                if m == self.l_viol {
                    // Window complete: violator extrema are final.
                    let vmin = min_agg.result();
                    let vmax = max_agg.result();
                    match (vmin, vmax) {
                        (None, None) => {
                            // Silent step (threaded path without skip).
                            self.phase = Phase::Done;
                        }
                        (Some(mn), Some(mx)) if self.cfg.handler_mode == HandlerMode::Tight => {
                            self.metrics.violation_steps += 1;
                            self.metrics.handler_calls += 1;
                            self.conclude_handler(m, mn.value, mx.value, out);
                        }
                        (mn_opt, Some(mx)) => {
                            // Line 25 ("else" branch): max is set — run
                            // MINIMUMPROTOCOL over *all* top-k. Reached with
                            // mn_opt = Some(_) only in Faithful mode.
                            let _ = mn_opt;
                            self.metrics.violation_steps += 1;
                            self.metrics.handler_calls += 1;
                            self.metrics.handler_protocols += 1;
                            out.broadcasts.push(DownMsg::HandlerStartMin);
                            self.metrics.handler_bcast += 1;
                            self.phase = Phase::HandlerMin {
                                agg: MinAggregator::new(self.cfg.k as u64),
                                start_m: m + 1,
                                carried_max: mx.value,
                            };
                        }
                        (Some(mn), None) => {
                            // Line 23: max not set — run MAXIMUMPROTOCOL
                            // over all non-top-k.
                            self.metrics.violation_steps += 1;
                            self.metrics.handler_calls += 1;
                            self.metrics.handler_protocols += 1;
                            out.broadcasts.push(DownMsg::HandlerStartMax);
                            self.metrics.handler_bcast += 1;
                            self.phase = Phase::HandlerMax {
                                agg: MaxAggregator::new((self.cfg.n - self.cfg.k) as u64),
                                start_m: m + 1,
                                carried_min: mn.value,
                            };
                        }
                    }
                }
            }
            Phase::HandlerMin {
                agg,
                start_m,
                carried_max,
            } => {
                for (_, up) in ups.drain(..) {
                    match up {
                        UpMsg::Handler(r) => {
                            agg.absorb(r);
                            self.metrics.handler_up += 1;
                        }
                        other => debug_assert!(false, "unexpected report {other:?}"),
                    }
                }
                let r = m - *start_m;
                if r < self.l_min {
                    if let Some(a) = agg.pending_announcement(policy) {
                        out.broadcasts.push(DownMsg::HandlerAnnounce(a));
                        out.scope = RoundScope::Engaged;
                        agg.mark_announced();
                        self.metrics.handler_bcast += 1;
                    }
                }
                if r == self.l_min {
                    let mn = agg
                        .result()
                        .expect("k ≥ 1 top-k nodes always respond")
                        .value;
                    let mx = *carried_max;
                    self.conclude_handler(m, mn, mx, out);
                }
            }
            Phase::HandlerMax {
                agg,
                start_m,
                carried_min,
            } => {
                for (_, up) in ups.drain(..) {
                    match up {
                        UpMsg::Handler(r) => {
                            agg.absorb(r);
                            self.metrics.handler_up += 1;
                        }
                        other => debug_assert!(false, "unexpected report {other:?}"),
                    }
                }
                let r = m - *start_m;
                if r < self.l_max {
                    if let Some(a) = agg.pending_announcement(policy) {
                        out.broadcasts.push(DownMsg::HandlerAnnounce(a));
                        out.scope = RoundScope::Engaged;
                        agg.mark_announced();
                        self.metrics.handler_bcast += 1;
                    }
                }
                if r == self.l_max {
                    let mx = agg
                        .result()
                        .expect("n−k ≥ 1 non-top-k nodes always respond")
                        .value;
                    let mn = *carried_min;
                    self.conclude_handler(m, mn, mx, out);
                }
            }
            Phase::Reset { agg, start_m } => {
                self.metrics.reset_rounds += 1;
                for (_, up) in ups.drain(..) {
                    match up {
                        UpMsg::Reset(r) => {
                            agg.absorb(r);
                            self.metrics.reset_up += 1;
                        }
                        other => debug_assert!(false, "unexpected report {other:?}"),
                    }
                }
                let r = m - *start_m;
                if r < self.l_n {
                    if let Some(a) = agg.pending_announcement(policy) {
                        out.broadcasts.push(DownMsg::ResetAnnounce(a));
                        out.scope = RoundScope::Engaged;
                        agg.mark_announced();
                        self.metrics.reset_bcast += 1;
                    }
                }
                if r == self.l_n {
                    let w = agg
                        .result()
                        .expect("every iteration has ≥ 1 unselected participant");
                    let k = self.cfg.k;
                    if self.reset_winners.len() < k {
                        self.reset_winners.push(w);
                        out.broadcasts.push(DownMsg::ResetWinner {
                            rank: self.reset_winners.len() as u32,
                            report: w,
                        });
                        self.metrics.reset_bcast += 1;
                        *agg = MaxAggregator::new(self.cfg.n as u64);
                        *start_m = m + 1;
                    } else {
                        // Line 40–41: threshold between the k-th and
                        // (k+1)-st largest; new epoch begins.
                        self.reset_winners.push(w);
                        self.conclude_reset(t, false, out);
                    }
                }
            }
            Phase::ResetBatched { start_m } => {
                self.metrics.reset_rounds += 1;
                for (_, up) in ups.drain(..) {
                    match up {
                        UpMsg::Reset(r) => {
                            self.ks_agg.absorb(r);
                            self.metrics.reset_up += 1;
                        }
                        other => debug_assert!(false, "unexpected report {other:?}"),
                    }
                }
                let r = m - *start_m;
                if r < self.l_ks {
                    // Sampling still running: announce the deactivation bar
                    // (the current (k+1)-th best) so dominated participants
                    // withdraw — the k-select analogue of line 18.
                    if let Some(bar) = self.ks_agg.pending_bar(policy) {
                        out.broadcasts.push(DownMsg::ResetBar(bar));
                        out.scope = RoundScope::Engaged;
                        self.ks_agg.mark_announced();
                        self.metrics.reset_bcast += 1;
                    }
                } else {
                    // r ≥ l_ks: the probability-1 round's reports arrived
                    // at r == l_ks, so the top-(k+1) is exact. Announce winners
                    // rank by rank (one broadcast per round — the model's
                    // per-round bandwidth discipline), then conclude.
                    let winners = self.ks_agg.winners();
                    let k = self.cfg.k;
                    assert_eq!(
                        winners.len(),
                        k + 1,
                        "n > k nodes guarantee k+1 reset winners"
                    );
                    let idx = self.reset_announced;
                    if idx <= k {
                        // Only the self-identified winner reacts (batched
                        // nodes never restart on winner announcements), so
                        // the round is scoped to engaged ∪ winner.
                        out.broadcasts.push(DownMsg::ResetWinner {
                            rank: (idx + 1) as u32,
                            report: winners[idx],
                        });
                        out.scope = RoundScope::EngagedPlus(winners[idx].id);
                        self.reset_announced += 1;
                        self.metrics.reset_bcast += 1;
                    } else {
                        self.conclude_reset(t, true, out);
                    }
                }
            }
        }
    }

    fn step_done(&self) -> bool {
        matches!(self.phase, Phase::Done)
    }

    fn topk(&self) -> &[NodeId] {
        &self.topk_ids
    }

    /// Serialize the committed state via the wire codec. Only legal between
    /// steps (phase `Done`), where all per-step scratch is dead — mid-phase
    /// the snapshot would be unsound and we refuse.
    fn encode_snapshot(&self, out: &mut Vec<u8>) -> bool {
        if !matches!(self.phase, Phase::Done) {
            return false;
        }
        let snap = CoordSnapshot {
            initialized: self.initialized,
            last_threshold: self.last_threshold,
            tracker: self
                .tracker
                .as_ref()
                .map(|g| (g.t_plus(), g.t_minus(), g.epoch_start())),
            topk_ids: self.topk_ids.clone(),
            metrics: self.metrics,
        };
        out.clear();
        codec::encode_snapshot(&snap, out);
        true
    }

    /// Restore from a committed-boundary snapshot. Validates the decoded
    /// state against this coordinator's configuration before applying it;
    /// on success all per-step scratch is reset and the live transport
    /// recovery counters are preserved (they describe this incarnation's
    /// faults, not the snapshotted one's).
    fn restore_snapshot(&mut self, bytes: &[u8]) -> bool {
        let mut rd = bytes;
        let Ok(snap) = codec::decode_snapshot(&mut rd) else {
            return false;
        };
        let n = self.cfg.n as u32;
        if snap.topk_ids.iter().any(|id| id.0 >= n) {
            return false;
        }
        let expected_ids = if !snap.initialized {
            0
        } else if self.cfg.is_degenerate() {
            self.cfg.n
        } else {
            self.cfg.k
        };
        if snap.topk_ids.len() != expected_ids {
            return false;
        }
        if snap.initialized && !self.cfg.is_degenerate() && snap.tracker.is_none() {
            return false;
        }
        self.initialized = snap.initialized;
        self.last_threshold = snap.last_threshold;
        self.tracker = snap.tracker.map(|(t_plus, t_minus, epoch_start)| {
            GapTracker::from_raw(t_plus, t_minus, epoch_start)
        });
        self.topk_ids = snap.topk_ids;
        let live_recovery = self.metrics.recovery;
        let live_wire = self.metrics.wire;
        self.metrics = snap.metrics;
        self.metrics.recovery = live_recovery;
        self.metrics.wire = live_wire;
        self.phase = Phase::Done;
        self.ks_agg.clear();
        self.reset_winners.clear();
        self.reset_announced = 0;
        true
    }

    fn note_recovery(&mut self, recovery: &topk_net::chaos::RecoveryMetrics) {
        self.metrics.recovery = *recovery;
    }

    fn note_wire(&mut self, wire: &topk_net::ledger::WireMetrics) {
        self.metrics.wire = *wire;
    }
}
