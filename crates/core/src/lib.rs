//! # topk-core — Algorithm 1 of Mäcker, Malatyali, Meyer auf der Heide:
//! filter-based online Top-k-Position Monitoring
//!
//! The coordinator must know, at every time step, which `k` of `n`
//! distributed nodes currently observe the `k` largest values, while
//! minimizing messages. This crate implements:
//!
//! * [`msg`] / [`node`] / [`coordinator`] — the paper's Algorithm 1 as
//!   communicating state machines (runnable on the sequential *and* the
//!   threaded runtime of `topk-net`);
//! * [`session`] / [`events`] — the public facade: [`MonitorBuilder`] →
//!   [`MonitorSession`], push-based ingestion with automatic dense/sparse
//!   routing and a typed [`TopkEvent`] stream, over any [`Engine`];
//! * [`monitor`] — the [`Monitor`] trait and [`TopkMonitor`], the
//!   assembled algorithm;
//! * [`threaded`] — [`ThreadedTopkMonitor`], the same algorithm on live
//!   OS-thread nodes with the delta-driven frame transport;
//! * [`baselines`] — naive streaming, §2.1 periodic recomputation,
//!   filter-with-poll-resolution, and Lam-et-al.-style dominance tracking;
//! * [`opt`] — the offline optimal filter segmentation (the competitive
//!   ratio's denominator), with a DP cross-check;
//! * [`config`] / [`metrics`] — knobs (handler faithfulness, broadcast
//!   policy) and phase-attributed counters.
//!
//! Competitive guarantee (Theorem 4.4): with the §4 protocols, Algorithm 1
//! is `O((log Δ + k)·log n)`-competitive against the optimal offline
//! filter-based algorithm, where `Δ = max_t (v_k^t − v_{k+1}^t)`.

#![forbid(unsafe_code)]

pub mod audit;
pub mod baselines;
pub mod codec;
pub mod config;
pub mod coordinator;
pub mod events;
pub mod metrics;
pub mod monitor;
pub mod msg;
pub mod multik;
pub mod node;
pub mod opt;
pub mod params;
pub mod session;
pub mod socket;
pub mod threaded;

pub use audit::{assert_audit_clean, audit_monitor, AuditError};
pub use baselines::{DominanceMidpoint, FilterNaiveResolve, NaiveMonitor, PeriodicRecompute};
pub use config::{ApproxMode, HandlerMode, MonitorConfig, ResetStrategy};
pub use coordinator::CoordinatorMachine;
pub use events::{EventReplay, TopkEvent};
pub use metrics::RunMetrics;
pub use monitor::{
    is_eps_valid_topk, is_valid_topk, run_monitor, run_monitor_sparse, Monitor, TopkMonitor,
};
pub use multik::MultiKMonitor;
pub use node::NodeMachine;
pub use opt::{
    opt_segments, opt_updates_dp, trace_delta, window_feasible, OptCostModel, OptResult,
};
pub use params::NodeParams;
pub use session::{BuildError, Engine, MonitorBuilder, MonitorSession};
pub use socket::SocketTopkMonitor;
pub use threaded::ThreadedTopkMonitor;
pub use topk_net::chaos::{ChaosPolicy, RecoveryMetrics, RuntimeError};
