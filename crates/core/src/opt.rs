//! The offline optimal filter-based algorithm `OPT` — the denominator of the
//! paper's competitive analysis.
//!
//! `OPT` sees the whole input in advance but must use coordinator-assigned
//! filters; its cost is the number of filter reassignments (§2.2: "to lower
//! bound the cost induced by OPT, we will essentially count the number of
//! filter updates over time").
//!
//! **Feasibility.** A window `[a, b]` admits one fixed filter set iff, with
//! `S` = the top-k at time `a`,
//! `T+ = min_{t∈[a,b], i∈S} v_i^t  ≥  T− = max_{t∈[a,b], j∉S} v_j^t`:
//! necessity is Lemma 3.2; sufficiency by assigning `[T−, ∞]` to `S` and
//! `[−∞, T−]` to the rest. Feasibility is subinterval-closed, so **greedy
//! maximal segmentation is optimal** (exchange argument); a DP cross-check
//! is exposed for tests.

use serde::{Deserialize, Serialize};

use topk_net::id::true_topk;
use topk_net::trace::TraceMatrix;

/// How to charge OPT per reassignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptCostModel {
    /// One message per filter reassignment (a single broadcast suffices in
    /// the paper's model) — the most conservative denominator; measured
    /// competitive ratios are upper bounds. The initial assignment counts.
    PerUpdate,
    /// One broadcast per reassignment plus one unicast per node whose
    /// filter-side (membership) changed.
    PerNodeDelivery,
}

/// Result of the offline segmentation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptResult {
    /// Maximal feasible segments `[start, end]` (inclusive), covering
    /// `0..steps`.
    pub segments: Vec<(usize, usize)>,
    /// Messages charged under the chosen cost model.
    pub cost: u64,
}

impl OptResult {
    /// Number of filter assignments (= number of segments; the first is the
    /// initialization).
    pub fn updates(&self) -> u64 {
        self.segments.len() as u64
    }
}

/// Membership bitmap of the top-k at step `t`.
fn topk_mask(trace: &TraceMatrix, t: usize, k: usize) -> Vec<bool> {
    let mut mask = vec![false; trace.n()];
    for id in true_topk(trace.step(t), k) {
        mask[id.idx()] = true;
    }
    mask
}

/// Greedy maximal segmentation of the whole trace (provably minimal count).
pub fn opt_segments(trace: &TraceMatrix, k: usize, model: OptCostModel) -> OptResult {
    let steps = trace.steps();
    assert!(steps > 0, "empty trace");
    assert!(k >= 1 && k <= trace.n(), "1 ≤ k ≤ n");
    let mut segments = Vec::new();
    let mut cost = 0u64;
    let mut prev_mask: Option<Vec<bool>> = None;

    if k == trace.n() {
        // Degenerate: a single unbounded filter set works forever.
        return OptResult {
            segments: vec![(0, steps - 1)],
            cost: 1,
        };
    }

    let mut start = 0usize;
    while start < steps {
        let mask = topk_mask(trace, start, k);
        // Running extrema over the segment.
        let mut t_plus = u64::MAX;
        let mut t_minus = 0u64;
        let mut end = start;
        for t in start..steps {
            let row = trace.step(t);
            let mut cur_min_in = u64::MAX;
            let mut cur_max_out = 0u64;
            for (i, &v) in row.iter().enumerate() {
                if mask[i] {
                    cur_min_in = cur_min_in.min(v);
                } else {
                    cur_max_out = cur_max_out.max(v);
                }
            }
            let new_plus = t_plus.min(cur_min_in);
            let new_minus = t_minus.max(cur_max_out);
            if new_plus < new_minus {
                break; // t cannot join the segment
            }
            t_plus = new_plus;
            t_minus = new_minus;
            end = t;
        }
        segments.push((start, end));
        cost += match model {
            OptCostModel::PerUpdate => 1,
            OptCostModel::PerNodeDelivery => {
                let changed = match &prev_mask {
                    None => trace.n() as u64, // initial delivery to everyone
                    Some(prev) => {
                        mask.iter().zip(prev.iter()).filter(|(a, b)| a != b).count() as u64
                    }
                };
                1 + changed
            }
        };
        prev_mask = Some(mask);
        start = end + 1;
    }

    OptResult { segments, cost }
}

/// Is `[a, b]` feasible for a fixed filter set? (Direct evaluation; used by
/// the DP cross-check and tests.)
pub fn window_feasible(trace: &TraceMatrix, k: usize, a: usize, b: usize) -> bool {
    if k == trace.n() {
        return true;
    }
    let mask = topk_mask(trace, a, k);
    let mut t_plus = u64::MAX;
    let mut t_minus = 0u64;
    for t in a..=b {
        for (i, &v) in trace.step(t).iter().enumerate() {
            if mask[i] {
                t_plus = t_plus.min(v);
            } else {
                t_minus = t_minus.max(v);
            }
        }
    }
    t_plus >= t_minus
}

/// Exact minimal segment count by dynamic programming — `O(T² · n)`; for
/// validating the greedy on small traces.
pub fn opt_updates_dp(trace: &TraceMatrix, k: usize) -> u64 {
    let steps = trace.steps();
    assert!(steps > 0);
    // dp[i] = minimal segments covering steps 0..i (exclusive).
    let mut dp = vec![u64::MAX; steps + 1];
    dp[0] = 0;
    for i in 1..=steps {
        for j in 0..i {
            if dp[j] != u64::MAX && window_feasible(trace, k, j, i - 1) {
                dp[i] = dp[i].min(dp[j] + 1);
            }
        }
    }
    dp[steps]
}

/// The paper's `Δ = max_t (v_k^t − v_{k+1}^t)` — the largest k/k+1 gap over
/// the trace (drives the `log Δ` term of Theorem 3.3).
pub fn trace_delta(trace: &TraceMatrix, k: usize) -> u64 {
    assert!(k >= 1 && k < trace.n(), "Δ needs 1 ≤ k < n");
    let mut delta = 0u64;
    let mut sorted = Vec::with_capacity(trace.n());
    for t in 0..trace.steps() {
        sorted.clear();
        sorted.extend_from_slice(trace.step(t));
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        delta = delta.max(sorted[k - 1] - sorted[k]);
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(rows: &[Vec<u64>]) -> TraceMatrix {
        TraceMatrix::from_rows(rows)
    }

    #[test]
    fn constant_trace_is_one_segment() {
        let t = trace(&vec![vec![1, 5, 3]; 10]);
        let r = opt_segments(&t, 1, OptCostModel::PerUpdate);
        assert_eq!(r.segments, vec![(0, 9)]);
        assert_eq!(r.cost, 1);
        assert_eq!(r.updates(), 1);
    }

    #[test]
    fn crossing_forces_new_segment() {
        // Step 0-1: n1 on top; step 2: n0 overtakes.
        let t = trace(&[vec![10, 50], vec![20, 40], vec![45, 30]]);
        let r = opt_segments(&t, 1, OptCostModel::PerUpdate);
        assert_eq!(r.updates(), 2);
        assert_eq!(r.segments[0], (0, 1));
        assert_eq!(r.segments[1], (2, 2));
    }

    #[test]
    fn near_crossing_without_rank_change_may_still_split() {
        // n0 dips below n1's *earlier* peak: T+ < T− although ranks never
        // change instantaneously — Lemma 3.2 is about the window extrema.
        let t = trace(&[vec![100, 50], vec![100, 90], vec![60, 20]]);
        // Window [0,2]: T+ = 60 (n0 min), T− = 90 (n1 max) ⇒ infeasible.
        assert!(!window_feasible(&t, 1, 0, 2));
        assert!(window_feasible(&t, 1, 0, 1));
        let r = opt_segments(&t, 1, OptCostModel::PerUpdate);
        assert_eq!(r.updates(), 2);
    }

    #[test]
    fn greedy_matches_dp_on_handcrafted() {
        let rows = vec![
            vec![10, 90, 50],
            vec![20, 80, 55],
            vec![60, 70, 40],
            vec![75, 30, 45],
            vec![90, 20, 95],
            vec![10, 85, 30],
        ];
        let t = trace(&rows);
        for k in 1..=2 {
            let greedy = opt_segments(&t, k, OptCostModel::PerUpdate).updates();
            let dp = opt_updates_dp(&t, k);
            assert_eq!(greedy, dp, "k={k}");
        }
    }

    #[test]
    fn k_equals_n_is_free_after_init() {
        let t = trace(&[vec![1, 2], vec![9, 0], vec![3, 3]]);
        let r = opt_segments(&t, 2, OptCostModel::PerUpdate);
        assert_eq!(r.cost, 1);
    }

    #[test]
    fn per_node_delivery_charges_membership_changes() {
        // One swap of the leader between two segments: 2 nodes change side.
        let t = trace(&[vec![10, 50, 0], vec![60, 20, 0]]);
        let r = opt_segments(&t, 1, OptCostModel::PerNodeDelivery);
        assert_eq!(r.updates(), 2);
        // init: 1 + 3 deliveries; swap: 1 + 2 changed.
        assert_eq!(r.cost, (1 + 3) + (1 + 2));
    }

    #[test]
    fn segments_partition_and_are_maximal() {
        // Random-ish small trace; verify greedy invariants directly.
        let rows: Vec<Vec<u64>> = (0..12u64)
            .map(|t| {
                (0..4u64)
                    .map(|i| (t * 7 + i * 13) % 23 + ((i == t % 4) as u64) * 40)
                    .collect()
            })
            .collect();
        let t = trace(&rows);
        let r = opt_segments(&t, 2, OptCostModel::PerUpdate);
        // Partition:
        assert_eq!(r.segments.first().unwrap().0, 0);
        assert_eq!(r.segments.last().unwrap().1, 11);
        for w in r.segments.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0);
        }
        // Feasible and maximal:
        for &(a, b) in &r.segments {
            assert!(window_feasible(&t, 2, a, b));
            if b + 1 < 12 {
                assert!(!window_feasible(&t, 2, a, b + 1), "greedy must be maximal");
            }
        }
        assert_eq!(r.updates(), opt_updates_dp(&t, 2));
    }

    #[test]
    fn delta_measures_boundary_gap() {
        let t = trace(&[vec![100, 40, 10], vec![70, 60, 0]]);
        // k=1: gaps 60, 10 → Δ=60. k=2: gaps 30, 60 → Δ=60.
        assert_eq!(trace_delta(&t, 1), 60);
        assert_eq!(trace_delta(&t, 2), 60);
    }
}
