//! [`NodeParams`] — the shared, read-only parameter block behind every
//! [`crate::NodeMachine`].
//!
//! The seed layout embedded a full [`MonitorConfig`] copy (and a ~136-byte
//! cipher RNG) in every node, putting each node at ~300 bytes — at
//! n = 10⁶ that is cache traffic, construction time, and memory for data
//! that is identical across the fleet. All nodes of one monitor now share
//! a single `Arc<NodeParams>` carrying the few fields the node side reads
//! (`n`, `k`, `slack`, the reset strategy) plus the three precomputed
//! fire-round distributions of the protocol bounds Algorithm 1 ever hands
//! a node:
//!
//! * `k` — violation/handler MINIMUMPROTOCOL(k);
//! * `n − k` — violation/handler MAXIMUMPROTOCOL(n−k);
//! * the reset bound — `n` (legacy) or `⌊n/(k+1)⌋` (batched k-select).
//!
//! Sampling a participant's first-send round is then one table lookup per
//! episode ([`topk_proto::schedule::FireDist`]), and the node itself fits
//! in one cache line (pinned by a `size_of` assert in `crate::node`).

use std::sync::Arc;

use topk_proto::kselect::sampling_bound;
use topk_proto::schedule::FireDist;

use crate::config::{MonitorConfig, ResetStrategy};

/// Shared per-monitor node parameters; build once via [`NodeParams::shared`]
/// and clone the `Arc` into every node.
#[derive(Debug, Clone)]
pub struct NodeParams {
    /// Number of nodes.
    pub n: u32,
    /// Monitored positions.
    pub k: u32,
    /// Approximation slack `ε` (see [`MonitorConfig::slack`]).
    pub slack: u64,
    /// FILTERRESET strategy (decides the reset sampling bound).
    pub reset: ResetStrategy,
    /// Fire-round schedule of MINIMUMPROTOCOL(k) (violation + handler).
    pub dist_min: FireDist,
    /// Fire-round schedule of MAXIMUMPROTOCOL(n−k) (violation + handler).
    pub dist_max: FireDist,
    /// Fire-round schedule of the FILTERRESET sweep (bound per strategy).
    pub dist_reset: FireDist,
}

impl NodeParams {
    /// Precompute the parameter block for `cfg` and wrap it for sharing.
    pub fn shared(cfg: &MonitorConfig) -> Arc<Self> {
        let n = cfg.n as u64;
        let k = cfg.k as u64;
        let reset_bound = match cfg.reset {
            ResetStrategy::Legacy => n,
            ResetStrategy::Batched => sampling_bound(cfg.k + 1, n),
        };
        Arc::new(NodeParams {
            n: cfg.n as u32,
            k: cfg.k as u32,
            slack: cfg.slack,
            reset: cfg.reset,
            dist_min: FireDist::for_bound(k.max(1)),
            dist_max: FireDist::for_bound((n - k).max(1)),
            dist_reset: FireDist::for_bound(reset_bound),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_net::rng::log2_ceil;

    #[test]
    fn distributions_match_protocol_bounds() {
        let p = NodeParams::shared(&MonitorConfig::new(1000, 8));
        assert_eq!(p.dist_min.n_bound(), 8);
        assert_eq!(p.dist_max.n_bound(), 992);
        assert_eq!(p.dist_reset.n_bound(), 1000 / 9, "batched k-select bound");
        assert_eq!(p.dist_reset.last_round(), log2_ceil(1000 / 9));

        let legacy =
            NodeParams::shared(&MonitorConfig::new(1000, 8).with_reset(ResetStrategy::Legacy));
        assert_eq!(legacy.dist_reset.n_bound(), 1000);
    }

    #[test]
    fn degenerate_bounds_stay_positive() {
        // k = n (degenerate) and n − k = 0 must not panic the tables.
        let p = NodeParams::shared(&MonitorConfig::new(4, 4));
        assert_eq!(p.dist_max.n_bound(), 1);
        assert_eq!(p.dist_max.last_round(), 0);
    }
}
