//! Binary wire codec for the Algorithm 1 message vocabulary.
//!
//! The in-memory runtimes pass enums directly; this codec proves the
//! vocabulary really serializes into the model's `O(log n + log max v)`
//! size budget (every encoding is exactly `wire_bits()/8` bytes, checked in
//! tests and by a round-trip property suite), and gives a real deployment a
//! concrete frame format: 1 tag byte + LEB128 varints.

use bytes::{Buf, BufMut};

use topk_net::id::NodeId;
use topk_net::socket::{FrameCodec, WireError};
use topk_net::wire::{get_varint, put_varint, Report};

use crate::metrics::RunMetrics;
use crate::msg::{DownMsg, UpMsg};

// Tag bytes (stable wire contract).
const T_VIOL_MIN: u8 = 0x01;
const T_VIOL_MAX: u8 = 0x02;
const T_HANDLER: u8 = 0x03;
const T_RESET: u8 = 0x04;

const T_VIOL_MIN_ANN: u8 = 0x11;
const T_VIOL_MAX_ANN: u8 = 0x12;
const T_HANDLER_START_MIN: u8 = 0x13;
const T_HANDLER_START_MAX: u8 = 0x14;
const T_HANDLER_ANN: u8 = 0x15;
const T_MIDPOINT: u8 = 0x16;
const T_RESET_START: u8 = 0x17;
const T_RESET_WINNER: u8 = 0x18;
const T_RESET_ANN: u8 = 0x19;
const T_RESET_DONE: u8 = 0x1a;
const T_RESET_BAR: u8 = 0x1b;
const T_BAND: u8 = 0x1c;

const T_SNAPSHOT: u8 = 0x21;
const SNAPSHOT_VERSION: u8 = 0x01;

// Snapshot flag bits.
const F_INITIALIZED: u8 = 0b001;
const F_THRESHOLD: u8 = 0b010;
const F_TRACKER: u8 = 0b100;

/// Codec error: unknown tag or truncated/overlong payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn put_report(buf: &mut impl BufMut, r: Report) {
    r.encode(buf);
}

fn get_report(buf: &mut impl Buf) -> Result<Report, DecodeError> {
    Report::decode(buf).ok_or_else(|| DecodeError("truncated report".into()))
}

/// Encode an up-message. The produced length is exactly
/// `msg.wire_bits() / 8` bytes.
pub fn encode_up(msg: &UpMsg, buf: &mut impl BufMut) {
    let (tag, report) = match *msg {
        UpMsg::ViolMin(r) => (T_VIOL_MIN, r),
        UpMsg::ViolMax(r) => (T_VIOL_MAX, r),
        UpMsg::Handler(r) => (T_HANDLER, r),
        UpMsg::Reset(r) => (T_RESET, r),
    };
    buf.put_u8(tag);
    put_report(buf, report);
}

/// Decode an up-message.
pub fn decode_up(buf: &mut impl Buf) -> Result<UpMsg, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError("empty buffer".into()));
    }
    let tag = buf.get_u8();
    let r = get_report(buf)?;
    Ok(match tag {
        T_VIOL_MIN => UpMsg::ViolMin(r),
        T_VIOL_MAX => UpMsg::ViolMax(r),
        T_HANDLER => UpMsg::Handler(r),
        T_RESET => UpMsg::Reset(r),
        other => return Err(DecodeError(format!("unknown up tag {other:#x}"))),
    })
}

/// Encode a down-message. The produced length is exactly
/// `msg.wire_bits() / 8` bytes.
pub fn encode_down(msg: &DownMsg, buf: &mut impl BufMut) {
    match *msg {
        DownMsg::ViolMinAnnounce(r) => {
            buf.put_u8(T_VIOL_MIN_ANN);
            put_report(buf, r);
        }
        DownMsg::ViolMaxAnnounce(r) => {
            buf.put_u8(T_VIOL_MAX_ANN);
            put_report(buf, r);
        }
        DownMsg::HandlerStartMin => buf.put_u8(T_HANDLER_START_MIN),
        DownMsg::HandlerStartMax => buf.put_u8(T_HANDLER_START_MAX),
        DownMsg::HandlerAnnounce(r) => {
            buf.put_u8(T_HANDLER_ANN);
            put_report(buf, r);
        }
        DownMsg::Midpoint(m) => {
            buf.put_u8(T_MIDPOINT);
            put_varint(buf, m);
        }
        DownMsg::Band(m) => {
            buf.put_u8(T_BAND);
            put_varint(buf, m);
        }
        DownMsg::ResetStart => buf.put_u8(T_RESET_START),
        DownMsg::ResetWinner { rank, report } => {
            buf.put_u8(T_RESET_WINNER);
            put_varint(buf, rank as u64);
            put_report(buf, report);
        }
        DownMsg::ResetAnnounce(r) => {
            buf.put_u8(T_RESET_ANN);
            put_report(buf, r);
        }
        DownMsg::ResetBar(r) => {
            buf.put_u8(T_RESET_BAR);
            put_report(buf, r);
        }
        DownMsg::ResetDone { threshold } => {
            buf.put_u8(T_RESET_DONE);
            put_varint(buf, threshold);
        }
    }
}

/// Decode a down-message.
pub fn decode_down(buf: &mut impl Buf) -> Result<DownMsg, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError("empty buffer".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        T_VIOL_MIN_ANN => DownMsg::ViolMinAnnounce(get_report(buf)?),
        T_VIOL_MAX_ANN => DownMsg::ViolMaxAnnounce(get_report(buf)?),
        T_HANDLER_START_MIN => DownMsg::HandlerStartMin,
        T_HANDLER_START_MAX => DownMsg::HandlerStartMax,
        T_HANDLER_ANN => DownMsg::HandlerAnnounce(get_report(buf)?),
        T_MIDPOINT => DownMsg::Midpoint(
            get_varint(buf).ok_or_else(|| DecodeError("truncated midpoint".into()))?,
        ),
        T_BAND => DownMsg::Band(
            get_varint(buf).ok_or_else(|| DecodeError("truncated band threshold".into()))?,
        ),
        T_RESET_START => DownMsg::ResetStart,
        T_RESET_WINNER => {
            let rank = get_varint(buf).ok_or_else(|| DecodeError("truncated rank".into()))?;
            let rank = u32::try_from(rank).map_err(|_| DecodeError("rank overflow".into()))?;
            DownMsg::ResetWinner {
                rank,
                report: get_report(buf)?,
            }
        }
        T_RESET_ANN => DownMsg::ResetAnnounce(get_report(buf)?),
        T_RESET_BAR => DownMsg::ResetBar(get_report(buf)?),
        T_RESET_DONE => DownMsg::ResetDone {
            threshold: get_varint(buf).ok_or_else(|| DecodeError("truncated threshold".into()))?,
        },
        other => return Err(DecodeError(format!("unknown down tag {other:#x}"))),
    })
}

/// The socket transport embeds model messages in its frames through
/// [`FrameCodec`]; the encodings are exactly [`encode_up`]/[`encode_down`]
/// (tag byte + varints, self-delimiting), so the bytes on the wire are the
/// same vocabulary this module defines — a codec decode failure surfaces as
/// a typed [`WireError::Malformed`], never a panic.
impl FrameCodec for UpMsg {
    fn encode_frame(&self, buf: &mut Vec<u8>) {
        encode_up(self, buf);
    }

    fn decode_frame(buf: &mut &[u8]) -> Result<Self, WireError> {
        decode_up(buf).map_err(|DecodeError(what)| WireError::Malformed { what })
    }
}

impl FrameCodec for DownMsg {
    fn encode_frame(&self, buf: &mut Vec<u8>) {
        encode_down(self, buf);
    }

    fn decode_frame(buf: &mut &[u8]) -> Result<Self, WireError> {
        decode_down(buf).map_err(|DecodeError(what)| WireError::Malformed { what })
    }
}

/// Coordinator state at a committed step boundary — everything a restarted
/// coordinator needs to resume monitoring, and nothing more. Per-step phase
/// machinery (aggregators, winner buffers) is deliberately absent: snapshots
/// are taken only between steps, where the phase is `Done` and all scratch
/// state is dead. The recovery counters of [`RunMetrics`] are likewise
/// excluded — they belong to the live transport, not the committed protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordSnapshot {
    /// Has the `t = 0` initialization reset completed?
    pub initialized: bool,
    /// The filter threshold the nodes currently hold, if any.
    pub last_threshold: Option<u64>,
    /// `(T+, T−, epoch_start)` of the live epoch, if any.
    pub tracker: Option<(u64, u64, u64)>,
    /// Current answer: top-k ids, sorted ascending.
    pub topk_ids: Vec<NodeId>,
    /// Committed protocol counters (`recovery` is zeroed on decode).
    pub metrics: RunMetrics,
}

/// Encode a coordinator snapshot: tag + version + flags byte, then varints.
pub fn encode_snapshot(s: &CoordSnapshot, buf: &mut impl BufMut) {
    buf.put_u8(T_SNAPSHOT);
    buf.put_u8(SNAPSHOT_VERSION);
    let mut flags = 0u8;
    if s.initialized {
        flags |= F_INITIALIZED;
    }
    if s.last_threshold.is_some() {
        flags |= F_THRESHOLD;
    }
    if s.tracker.is_some() {
        flags |= F_TRACKER;
    }
    buf.put_u8(flags);
    if let Some(th) = s.last_threshold {
        put_varint(buf, th);
    }
    if let Some((t_plus, t_minus, epoch_start)) = s.tracker {
        put_varint(buf, t_plus);
        put_varint(buf, t_minus);
        put_varint(buf, epoch_start);
    }
    put_varint(buf, s.topk_ids.len() as u64);
    for id in &s.topk_ids {
        put_varint(buf, id.0 as u64);
    }
    let m = &s.metrics;
    for counter in [
        m.steps,
        m.violation_steps,
        m.viol_up,
        m.viol_bcast,
        m.handler_calls,
        m.handler_protocols,
        m.handler_up,
        m.handler_bcast,
        m.midpoint_updates,
        m.midpoint_bcast,
        m.resets,
        m.reset_up,
        m.reset_bcast,
        m.reset_rounds,
        m.band_hits,
        m.band_bcast,
    ] {
        put_varint(buf, counter);
    }
}

fn need(buf: &mut impl Buf, what: &str) -> Result<u64, DecodeError> {
    get_varint(buf).ok_or_else(|| DecodeError(format!("truncated {what}")))
}

/// Decode a coordinator snapshot. Structural validation only (tags, flags,
/// completeness, a live `T+ ≥ T−` certificate, sorted unique ids); semantic
/// validation against the monitor configuration is the caller's job.
pub fn decode_snapshot(buf: &mut impl Buf) -> Result<CoordSnapshot, DecodeError> {
    if buf.remaining() < 3 {
        return Err(DecodeError("truncated snapshot header".into()));
    }
    let tag = buf.get_u8();
    if tag != T_SNAPSHOT {
        return Err(DecodeError(format!("unknown snapshot tag {tag:#x}")));
    }
    let version = buf.get_u8();
    if version != SNAPSHOT_VERSION {
        return Err(DecodeError(format!("unknown snapshot version {version}")));
    }
    let flags = buf.get_u8();
    if flags & !(F_INITIALIZED | F_THRESHOLD | F_TRACKER) != 0 {
        return Err(DecodeError(format!("unknown snapshot flags {flags:#b}")));
    }
    let last_threshold = if flags & F_THRESHOLD != 0 {
        Some(need(buf, "threshold")?)
    } else {
        None
    };
    let tracker = if flags & F_TRACKER != 0 {
        let t_plus = need(buf, "tracker T+")?;
        let t_minus = need(buf, "tracker T-")?;
        let epoch_start = need(buf, "tracker epoch")?;
        if t_plus < t_minus {
            return Err(DecodeError("snapshot tracker certificate is dead".into()));
        }
        Some((t_plus, t_minus, epoch_start))
    } else {
        None
    };
    let n_ids = need(buf, "id count")?;
    if n_ids > u32::MAX as u64 {
        return Err(DecodeError("id count overflow".into()));
    }
    let mut topk_ids = Vec::with_capacity(n_ids as usize);
    for _ in 0..n_ids {
        let raw = need(buf, "node id")?;
        let id = NodeId(u32::try_from(raw).map_err(|_| DecodeError("node id overflow".into()))?);
        if topk_ids.last().is_some_and(|prev| *prev >= id) {
            return Err(DecodeError("snapshot ids not sorted/unique".into()));
        }
        topk_ids.push(id);
    }
    let mut counters = [0u64; 16];
    for c in counters.iter_mut() {
        *c = need(buf, "metrics counter")?;
    }
    let metrics = RunMetrics {
        steps: counters[0],
        violation_steps: counters[1],
        viol_up: counters[2],
        viol_bcast: counters[3],
        handler_calls: counters[4],
        handler_protocols: counters[5],
        handler_up: counters[6],
        handler_bcast: counters[7],
        midpoint_updates: counters[8],
        midpoint_bcast: counters[9],
        resets: counters[10],
        reset_up: counters[11],
        reset_bcast: counters[12],
        reset_rounds: counters[13],
        band_hits: counters[14],
        band_bcast: counters[15],
        recovery: Default::default(),
        wire: Default::default(),
    };
    Ok(CoordSnapshot {
        initialized: flags & F_INITIALIZED != 0,
        last_threshold,
        tracker,
        topk_ids,
        metrics,
    })
}

/// All message constructors, for exhaustive tests.
#[cfg(test)]
fn sample_messages(id: topk_net::id::NodeId, v: u64) -> (Vec<UpMsg>, Vec<DownMsg>) {
    let r = Report { id, value: v };
    (
        vec![
            UpMsg::ViolMin(r),
            UpMsg::ViolMax(r),
            UpMsg::Handler(r),
            UpMsg::Reset(r),
        ],
        vec![
            DownMsg::ViolMinAnnounce(r),
            DownMsg::ViolMaxAnnounce(r),
            DownMsg::HandlerStartMin,
            DownMsg::HandlerStartMax,
            DownMsg::HandlerAnnounce(r),
            DownMsg::Midpoint(v),
            DownMsg::Band(v),
            DownMsg::ResetStart,
            DownMsg::ResetWinner {
                rank: id.0.max(1),
                report: r,
            },
            DownMsg::ResetAnnounce(r),
            DownMsg::ResetBar(r),
            DownMsg::ResetDone { threshold: v },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;
    use topk_net::id::NodeId;
    use topk_net::wire::WireSize;

    #[test]
    fn exhaustive_roundtrip_and_size_model() {
        for (id, v) in [
            (0u32, 0u64),
            (1, 1),
            (12345, 987_654_321),
            (u32::MAX, u64::MAX),
        ] {
            let (ups, downs) = sample_messages(NodeId(id), v);
            for m in ups {
                let mut buf = BytesMut::new();
                encode_up(&m, &mut buf);
                assert_eq!(
                    buf.len() as u32 * 8,
                    m.wire_bits(),
                    "size model must equal encoding for {m:?}"
                );
                let mut rd = buf.freeze();
                assert_eq!(decode_up(&mut rd).unwrap(), m);
                assert!(!rd.has_remaining(), "no trailing bytes for {m:?}");
            }
            for m in downs {
                let mut buf = BytesMut::new();
                encode_down(&m, &mut buf);
                assert_eq!(
                    buf.len() as u32 * 8,
                    m.wire_bits(),
                    "size model must equal encoding for {m:?}"
                );
                let mut rd = buf.freeze();
                assert_eq!(decode_down(&mut rd).unwrap(), m);
                assert!(!rd.has_remaining(), "no trailing bytes for {m:?}");
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        let mut empty: &[u8] = &[];
        assert!(decode_up(&mut empty).is_err());
        let mut unknown: &[u8] = &[0xff, 0x01, 0x01];
        assert!(decode_down(&mut unknown).is_err());
        let mut truncated: &[u8] = &[super::T_VIOL_MIN, 0x80]; // unterminated varint
        assert!(decode_up(&mut truncated).is_err());
    }

    #[test]
    fn snapshot_roundtrip_and_rejects_garbage() {
        let snap = CoordSnapshot {
            initialized: true,
            last_threshold: Some(12345),
            tracker: Some((900, 850, 17)),
            topk_ids: vec![NodeId(1), NodeId(4), NodeId(9)],
            metrics: RunMetrics {
                steps: 100,
                resets: 3,
                reset_rounds: 42,
                ..Default::default()
            },
        };
        let mut buf = BytesMut::new();
        encode_snapshot(&snap, &mut buf);
        let mut rd = buf.freeze();
        assert_eq!(decode_snapshot(&mut rd).unwrap(), snap);
        assert!(!rd.has_remaining(), "no trailing bytes");

        // Fresh (uninitialized) snapshot: all options empty.
        let fresh = CoordSnapshot {
            initialized: false,
            last_threshold: None,
            tracker: None,
            topk_ids: Vec::new(),
            metrics: RunMetrics::default(),
        };
        let mut buf = BytesMut::new();
        encode_snapshot(&fresh, &mut buf);
        let mut rd = buf.freeze();
        assert_eq!(decode_snapshot(&mut rd).unwrap(), fresh);

        // Structural rejections.
        let mut empty: &[u8] = &[];
        assert!(decode_snapshot(&mut empty).is_err());
        let mut bad_tag: &[u8] = &[0x42, SNAPSHOT_VERSION, 0];
        assert!(decode_snapshot(&mut bad_tag).is_err());
        let mut bad_ver: &[u8] = &[T_SNAPSHOT, 0x7f, 0];
        assert!(decode_snapshot(&mut bad_ver).is_err());
        let mut bad_flags: &[u8] = &[T_SNAPSHOT, SNAPSHOT_VERSION, 0xff];
        assert!(decode_snapshot(&mut bad_flags).is_err());
        // Dead certificate: T+ < T−.
        let mut buf = BytesMut::new();
        buf.put_u8(T_SNAPSHOT);
        buf.put_u8(SNAPSHOT_VERSION);
        buf.put_u8(F_TRACKER);
        put_varint(&mut buf, 5); // T+
        put_varint(&mut buf, 9); // T− > T+
        put_varint(&mut buf, 0);
        let mut rd = buf.freeze();
        assert!(decode_snapshot(&mut rd).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn snapshot_roundtrip_prop(
            flags in 0u8..8,
            threshold in 0u64..=u64::MAX,
            a in 0u64..=u64::MAX, b in 0u64..=u64::MAX, epoch in 0u64..=u64::MAX,
            ids in proptest::collection::vec(0u32..=u32::MAX, 0..32),
            counters in proptest::collection::vec(0u64..=u64::MAX, 16),
        ) {
            let mut ids: Vec<NodeId> = ids.into_iter().map(NodeId).collect();
            ids.sort_unstable();
            ids.dedup();
            let snap = CoordSnapshot {
                initialized: flags & 1 != 0,
                last_threshold: (flags & 2 != 0).then_some(threshold),
                tracker: (flags & 4 != 0).then_some((a.max(b), a.min(b), epoch)),
                topk_ids: ids,
                metrics: RunMetrics {
                    steps: counters[0],
                    violation_steps: counters[1],
                    viol_up: counters[2],
                    viol_bcast: counters[3],
                    handler_calls: counters[4],
                    handler_protocols: counters[5],
                    handler_up: counters[6],
                    handler_bcast: counters[7],
                    midpoint_updates: counters[8],
                    midpoint_bcast: counters[9],
                    resets: counters[10],
                    reset_up: counters[11],
                    reset_bcast: counters[12],
                    reset_rounds: counters[13],
                    band_hits: counters[14],
                    band_bcast: counters[15],
                    recovery: Default::default(),
                    wire: Default::default(),
                },
            };
            let mut buf = BytesMut::new();
            encode_snapshot(&snap, &mut buf);
            let mut rd = buf.freeze();
            prop_assert_eq!(decode_snapshot(&mut rd).unwrap(), snap);
            prop_assert!(!rd.has_remaining());
        }

        #[test]
        fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(0u8..=0xff, 0..64)) {
            // Err or Ok are both fine — panicking is the only failure mode.
            let mut rd: &[u8] = &bytes;
            let _ = decode_up(&mut rd);
            let mut rd: &[u8] = &bytes;
            let _ = decode_down(&mut rd);
            let mut rd: &[u8] = &bytes;
            let _ = decode_snapshot(&mut rd);
        }

        #[test]
        fn decode_never_panics_on_truncation(id in 0u32..=u32::MAX, v in 0u64..=u64::MAX, which in 0u8..12, cut in 0usize..16) {
            let r = Report { id: NodeId(id), value: v };
            let m = match which {
                0 => DownMsg::ViolMinAnnounce(r),
                1 => DownMsg::ViolMaxAnnounce(r),
                2 => DownMsg::HandlerStartMin,
                3 => DownMsg::HandlerStartMax,
                4 => DownMsg::HandlerAnnounce(r),
                5 => DownMsg::Midpoint(v),
                6 => DownMsg::ResetStart,
                7 => DownMsg::ResetWinner { rank: id.max(1), report: r },
                8 => DownMsg::ResetAnnounce(r),
                9 => DownMsg::ResetBar(r),
                10 => DownMsg::Band(v),
                _ => DownMsg::ResetDone { threshold: v },
            };
            let mut buf = BytesMut::new();
            encode_down(&m, &mut buf);
            let keep = buf.len().saturating_sub(cut.min(buf.len()));
            let mut rd: &[u8] = &buf[..keep];
            let res = decode_down(&mut rd);
            if cut == 0 {
                prop_assert_eq!(res.unwrap(), m);
            } else if keep < buf.len() {
                prop_assert!(res.is_err(), "truncated input must be rejected");
            }
        }

        #[test]
        fn up_roundtrip(id in 0u32..=u32::MAX, v in 0u64..=u64::MAX, which in 0u8..4) {
            let r = Report { id: NodeId(id), value: v };
            let m = match which {
                0 => UpMsg::ViolMin(r),
                1 => UpMsg::ViolMax(r),
                2 => UpMsg::Handler(r),
                _ => UpMsg::Reset(r),
            };
            let mut buf = BytesMut::new();
            encode_up(&m, &mut buf);
            prop_assert_eq!(buf.len() as u32 * 8, m.wire_bits());
            let mut rd = buf.freeze();
            prop_assert_eq!(decode_up(&mut rd).unwrap(), m);
        }

        #[test]
        fn down_roundtrip(id in 0u32..=u32::MAX, v in 0u64..=u64::MAX, rank in 1u32..=u32::MAX, which in 0u8..12) {
            let r = Report { id: NodeId(id), value: v };
            let m = match which {
                0 => DownMsg::ViolMinAnnounce(r),
                1 => DownMsg::ViolMaxAnnounce(r),
                2 => DownMsg::HandlerStartMin,
                3 => DownMsg::HandlerStartMax,
                4 => DownMsg::HandlerAnnounce(r),
                5 => DownMsg::Midpoint(v),
                6 => DownMsg::ResetStart,
                7 => DownMsg::ResetWinner { rank, report: r },
                8 => DownMsg::ResetAnnounce(r),
                9 => DownMsg::ResetBar(r),
                10 => DownMsg::Band(v),
                _ => DownMsg::ResetDone { threshold: v },
            };
            let mut buf = BytesMut::new();
            encode_down(&m, &mut buf);
            prop_assert_eq!(buf.len() as u32 * 8, m.wire_bits());
            let mut rd = buf.freeze();
            prop_assert_eq!(decode_down(&mut rd).unwrap(), m);
        }
    }
}
