//! Binary wire codec for the Algorithm 1 message vocabulary.
//!
//! The in-memory runtimes pass enums directly; this codec proves the
//! vocabulary really serializes into the model's `O(log n + log max v)`
//! size budget (every encoding is exactly `wire_bits()/8` bytes, checked in
//! tests and by a round-trip property suite), and gives a real deployment a
//! concrete frame format: 1 tag byte + LEB128 varints.

use bytes::{Buf, BufMut};

use topk_net::wire::{get_varint, put_varint, Report};

use crate::msg::{DownMsg, UpMsg};

// Tag bytes (stable wire contract).
const T_VIOL_MIN: u8 = 0x01;
const T_VIOL_MAX: u8 = 0x02;
const T_HANDLER: u8 = 0x03;
const T_RESET: u8 = 0x04;

const T_VIOL_MIN_ANN: u8 = 0x11;
const T_VIOL_MAX_ANN: u8 = 0x12;
const T_HANDLER_START_MIN: u8 = 0x13;
const T_HANDLER_START_MAX: u8 = 0x14;
const T_HANDLER_ANN: u8 = 0x15;
const T_MIDPOINT: u8 = 0x16;
const T_RESET_START: u8 = 0x17;
const T_RESET_WINNER: u8 = 0x18;
const T_RESET_ANN: u8 = 0x19;
const T_RESET_DONE: u8 = 0x1a;
const T_RESET_BAR: u8 = 0x1b;

/// Codec error: unknown tag or truncated/overlong payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn put_report(buf: &mut impl BufMut, r: Report) {
    r.encode(buf);
}

fn get_report(buf: &mut impl Buf) -> Result<Report, DecodeError> {
    Report::decode(buf).ok_or_else(|| DecodeError("truncated report".into()))
}

/// Encode an up-message. The produced length is exactly
/// `msg.wire_bits() / 8` bytes.
pub fn encode_up(msg: &UpMsg, buf: &mut impl BufMut) {
    let (tag, report) = match *msg {
        UpMsg::ViolMin(r) => (T_VIOL_MIN, r),
        UpMsg::ViolMax(r) => (T_VIOL_MAX, r),
        UpMsg::Handler(r) => (T_HANDLER, r),
        UpMsg::Reset(r) => (T_RESET, r),
    };
    buf.put_u8(tag);
    put_report(buf, report);
}

/// Decode an up-message.
pub fn decode_up(buf: &mut impl Buf) -> Result<UpMsg, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError("empty buffer".into()));
    }
    let tag = buf.get_u8();
    let r = get_report(buf)?;
    Ok(match tag {
        T_VIOL_MIN => UpMsg::ViolMin(r),
        T_VIOL_MAX => UpMsg::ViolMax(r),
        T_HANDLER => UpMsg::Handler(r),
        T_RESET => UpMsg::Reset(r),
        other => return Err(DecodeError(format!("unknown up tag {other:#x}"))),
    })
}

/// Encode a down-message. The produced length is exactly
/// `msg.wire_bits() / 8` bytes.
pub fn encode_down(msg: &DownMsg, buf: &mut impl BufMut) {
    match *msg {
        DownMsg::ViolMinAnnounce(r) => {
            buf.put_u8(T_VIOL_MIN_ANN);
            put_report(buf, r);
        }
        DownMsg::ViolMaxAnnounce(r) => {
            buf.put_u8(T_VIOL_MAX_ANN);
            put_report(buf, r);
        }
        DownMsg::HandlerStartMin => buf.put_u8(T_HANDLER_START_MIN),
        DownMsg::HandlerStartMax => buf.put_u8(T_HANDLER_START_MAX),
        DownMsg::HandlerAnnounce(r) => {
            buf.put_u8(T_HANDLER_ANN);
            put_report(buf, r);
        }
        DownMsg::Midpoint(m) => {
            buf.put_u8(T_MIDPOINT);
            put_varint(buf, m);
        }
        DownMsg::ResetStart => buf.put_u8(T_RESET_START),
        DownMsg::ResetWinner { rank, report } => {
            buf.put_u8(T_RESET_WINNER);
            put_varint(buf, rank as u64);
            put_report(buf, report);
        }
        DownMsg::ResetAnnounce(r) => {
            buf.put_u8(T_RESET_ANN);
            put_report(buf, r);
        }
        DownMsg::ResetBar(r) => {
            buf.put_u8(T_RESET_BAR);
            put_report(buf, r);
        }
        DownMsg::ResetDone { threshold } => {
            buf.put_u8(T_RESET_DONE);
            put_varint(buf, threshold);
        }
    }
}

/// Decode a down-message.
pub fn decode_down(buf: &mut impl Buf) -> Result<DownMsg, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError("empty buffer".into()));
    }
    let tag = buf.get_u8();
    Ok(match tag {
        T_VIOL_MIN_ANN => DownMsg::ViolMinAnnounce(get_report(buf)?),
        T_VIOL_MAX_ANN => DownMsg::ViolMaxAnnounce(get_report(buf)?),
        T_HANDLER_START_MIN => DownMsg::HandlerStartMin,
        T_HANDLER_START_MAX => DownMsg::HandlerStartMax,
        T_HANDLER_ANN => DownMsg::HandlerAnnounce(get_report(buf)?),
        T_MIDPOINT => DownMsg::Midpoint(
            get_varint(buf).ok_or_else(|| DecodeError("truncated midpoint".into()))?,
        ),
        T_RESET_START => DownMsg::ResetStart,
        T_RESET_WINNER => {
            let rank = get_varint(buf).ok_or_else(|| DecodeError("truncated rank".into()))?;
            let rank = u32::try_from(rank).map_err(|_| DecodeError("rank overflow".into()))?;
            DownMsg::ResetWinner {
                rank,
                report: get_report(buf)?,
            }
        }
        T_RESET_ANN => DownMsg::ResetAnnounce(get_report(buf)?),
        T_RESET_BAR => DownMsg::ResetBar(get_report(buf)?),
        T_RESET_DONE => DownMsg::ResetDone {
            threshold: get_varint(buf).ok_or_else(|| DecodeError("truncated threshold".into()))?,
        },
        other => return Err(DecodeError(format!("unknown down tag {other:#x}"))),
    })
}

/// All message constructors, for exhaustive tests.
#[cfg(test)]
fn sample_messages(id: topk_net::id::NodeId, v: u64) -> (Vec<UpMsg>, Vec<DownMsg>) {
    let r = Report { id, value: v };
    (
        vec![
            UpMsg::ViolMin(r),
            UpMsg::ViolMax(r),
            UpMsg::Handler(r),
            UpMsg::Reset(r),
        ],
        vec![
            DownMsg::ViolMinAnnounce(r),
            DownMsg::ViolMaxAnnounce(r),
            DownMsg::HandlerStartMin,
            DownMsg::HandlerStartMax,
            DownMsg::HandlerAnnounce(r),
            DownMsg::Midpoint(v),
            DownMsg::ResetStart,
            DownMsg::ResetWinner {
                rank: id.0.max(1),
                report: r,
            },
            DownMsg::ResetAnnounce(r),
            DownMsg::ResetBar(r),
            DownMsg::ResetDone { threshold: v },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use proptest::prelude::*;
    use topk_net::id::NodeId;
    use topk_net::wire::WireSize;

    #[test]
    fn exhaustive_roundtrip_and_size_model() {
        for (id, v) in [
            (0u32, 0u64),
            (1, 1),
            (12345, 987_654_321),
            (u32::MAX, u64::MAX),
        ] {
            let (ups, downs) = sample_messages(NodeId(id), v);
            for m in ups {
                let mut buf = BytesMut::new();
                encode_up(&m, &mut buf);
                assert_eq!(
                    buf.len() as u32 * 8,
                    m.wire_bits(),
                    "size model must equal encoding for {m:?}"
                );
                let mut rd = buf.freeze();
                assert_eq!(decode_up(&mut rd).unwrap(), m);
                assert!(!rd.has_remaining(), "no trailing bytes for {m:?}");
            }
            for m in downs {
                let mut buf = BytesMut::new();
                encode_down(&m, &mut buf);
                assert_eq!(
                    buf.len() as u32 * 8,
                    m.wire_bits(),
                    "size model must equal encoding for {m:?}"
                );
                let mut rd = buf.freeze();
                assert_eq!(decode_down(&mut rd).unwrap(), m);
                assert!(!rd.has_remaining(), "no trailing bytes for {m:?}");
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        let mut empty: &[u8] = &[];
        assert!(decode_up(&mut empty).is_err());
        let mut unknown: &[u8] = &[0xff, 0x01, 0x01];
        assert!(decode_down(&mut unknown).is_err());
        let mut truncated: &[u8] = &[super::T_VIOL_MIN, 0x80]; // unterminated varint
        assert!(decode_up(&mut truncated).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        #[test]
        fn up_roundtrip(id in 0u32..=u32::MAX, v in 0u64..=u64::MAX, which in 0u8..4) {
            let r = Report { id: NodeId(id), value: v };
            let m = match which {
                0 => UpMsg::ViolMin(r),
                1 => UpMsg::ViolMax(r),
                2 => UpMsg::Handler(r),
                _ => UpMsg::Reset(r),
            };
            let mut buf = BytesMut::new();
            encode_up(&m, &mut buf);
            prop_assert_eq!(buf.len() as u32 * 8, m.wire_bits());
            let mut rd = buf.freeze();
            prop_assert_eq!(decode_up(&mut rd).unwrap(), m);
        }

        #[test]
        fn down_roundtrip(id in 0u32..=u32::MAX, v in 0u64..=u64::MAX, rank in 1u32..=u32::MAX, which in 0u8..11) {
            let r = Report { id: NodeId(id), value: v };
            let m = match which {
                0 => DownMsg::ViolMinAnnounce(r),
                1 => DownMsg::ViolMaxAnnounce(r),
                2 => DownMsg::HandlerStartMin,
                3 => DownMsg::HandlerStartMax,
                4 => DownMsg::HandlerAnnounce(r),
                5 => DownMsg::Midpoint(v),
                6 => DownMsg::ResetStart,
                7 => DownMsg::ResetWinner { rank, report: r },
                8 => DownMsg::ResetAnnounce(r),
                9 => DownMsg::ResetBar(r),
                _ => DownMsg::ResetDone { threshold: v },
            };
            let mut buf = BytesMut::new();
            encode_down(&m, &mut buf);
            prop_assert_eq!(buf.len() as u32 * 8, m.wire_bits());
            let mut rd = buf.freeze();
            prop_assert_eq!(decode_down(&mut rd).unwrap(), m);
        }
    }
}
