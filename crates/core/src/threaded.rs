//! [`ThreadedTopkMonitor`] — Algorithm 1 assembled on the *threaded*
//! runtime: one OS thread per [`NodeMachine`], the coordinator driven from
//! the caller's thread.
//!
//! Same [`Monitor`] contract as [`TopkMonitor`], same ledgers, same answers
//! — the two are bit-identical for equal `(cfg, seed)` and inputs (pinned by
//! `tests/runtime_conformance.rs`). The threaded transport is delta-driven:
//! on a silent step only changed and engaged nodes receive an observation
//! frame (see [`topk_net::threaded`]), so `sync_frames` grows with the
//! number of movers, not `n`.

use topk_net::behavior::CoordinatorBehavior;
use topk_net::chaos::{ChaosPolicy, RecoveryMetrics, RuntimeError};
use topk_net::id::{NodeId, Value};
use topk_net::ledger::LedgerSnapshot;
use topk_net::threaded::ThreadedCluster;

use crate::config::MonitorConfig;
use crate::coordinator::CoordinatorMachine;
use crate::events::{EventCursor, TopkEvent};
use crate::metrics::RunMetrics;
use crate::monitor::{Monitor, TopkMonitor};
use crate::node::NodeMachine;

/// Algorithm 1 on the threaded runtime — a [`Monitor`] whose nodes are live
/// OS threads exchanging crossbeam-channel frames with the driver.
///
/// This is the *engine* type; new code should usually build a
/// [`crate::session::MonitorSession`] with
/// [`Engine::Threaded`](crate::session::Engine) instead of constructing it
/// directly.
pub struct ThreadedTopkMonitor {
    cluster: ThreadedCluster<NodeMachine>,
    coord: CoordinatorMachine,
    cfg: MonitorConfig,
    events: EventCursor,
}

impl ThreadedTopkMonitor {
    /// Spawn the node threads. Seeds and behaviors match
    /// [`TopkMonitor::new`] exactly, so the two monitors are
    /// interchangeable twins.
    pub fn new(cfg: MonitorConfig, seed: u64) -> Self {
        let (nodes, coord) = TopkMonitor::make_parts(cfg, seed);
        ThreadedTopkMonitor {
            cluster: ThreadedCluster::spawn(nodes),
            coord,
            cfg,
            events: EventCursor::default(),
        }
    }

    /// Spawn the node threads behind a chaos-injecting transport: the same
    /// monitor as [`ThreadedTopkMonitor::new`], but every frame and reply
    /// crosses a seeded fault layer (drops, duplicates, delays, stalls,
    /// coordinator crash-and-restart — see [`ChaosPolicy`]). Every
    /// *committed* step produces answers, thresholds and events identical to
    /// the fault-free twin (pinned by the chaos arms of
    /// `tests/runtime_conformance.rs`); only the recovery counters and
    /// retransmission ledger channel record that faults happened.
    pub fn new_chaotic(cfg: MonitorConfig, seed: u64, policy: ChaosPolicy) -> Self {
        let (nodes, coord) = TopkMonitor::make_parts(cfg, seed);
        ThreadedTopkMonitor {
            cluster: ThreadedCluster::spawn_chaotic(nodes, policy),
            coord,
            cfg,
            events: EventCursor::default(),
        }
    }

    /// The coordinator (tracker/threshold accessors for tests and tools).
    pub fn coordinator(&self) -> &CoordinatorMachine {
        &self.coord
    }

    /// Fault-injection and recovery counters (all zero without a
    /// [`ChaosPolicy`]). The same block is mirrored into
    /// [`RunMetrics::recovery`] at each committed step.
    pub fn recovery(&self) -> &RecoveryMetrics {
        self.cluster.recovery()
    }

    /// Fallible form of [`Monitor::step`]: a transport failure the recovery
    /// layer cannot mask (a dead node thread, retries exhausted) surfaces as
    /// a typed [`RuntimeError`] instead of a panic.
    pub fn try_step(&mut self, t: u64, values: &[Value]) -> Result<(), RuntimeError> {
        self.cluster.try_step(&mut self.coord, t, values)
    }

    /// Fallible form of [`Monitor::step_sparse`].
    pub fn try_step_sparse(
        &mut self,
        t: u64,
        changes: &[(NodeId, Value)],
    ) -> Result<(), RuntimeError> {
        self.cluster.try_step_sparse(&mut self.coord, t, changes)
    }

    /// Phase-attributed event counters of the coordinator — same accessor
    /// surface as [`TopkMonitor::metrics`].
    pub fn metrics(&self) -> &RunMetrics {
        self.coord.metrics()
    }

    /// Coordinator micro-rounds executed so far (all phases) — counted by
    /// the threaded driver identically to
    /// [`TopkMonitor::micro_rounds_run`].
    pub fn micro_rounds_run(&self) -> u64 {
        self.cluster.micro_rounds_run()
    }

    /// Steps that exchanged no message and ran no micro-round.
    pub fn silent_steps(&self) -> u64 {
        self.cluster.silent_steps()
    }

    /// Transport-level synchronization frames sent so far (excluded from
    /// model cost). With the delta-driven transport this grows by
    /// `#changed + #engaged` per silent step, not `n`.
    pub fn sync_frames(&self) -> u64 {
        self.cluster.ledger().sync_frames()
    }

    /// The configuration this monitor runs.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Shut down the node threads and return their final state machines
    /// (for state-equality assertions against a sequential twin).
    pub fn shutdown(self) -> Vec<NodeMachine> {
        self.cluster.shutdown()
    }
}

impl Monitor for ThreadedTopkMonitor {
    fn name(&self) -> &'static str {
        "topk-filter-threaded"
    }

    fn step(&mut self, t: u64, values: &[Value]) {
        self.cluster.step(&mut self.coord, t, values);
    }

    fn step_sparse(&mut self, t: u64, changes: &[(NodeId, Value)]) {
        self.cluster.step_sparse(&mut self.coord, t, changes);
    }

    fn topk(&self) -> Vec<NodeId> {
        self.coord.topk().to_vec()
    }

    fn ledger(&self) -> LedgerSnapshot {
        self.cluster.ledger().snapshot()
    }

    fn n(&self) -> usize {
        self.cfg.n
    }

    fn k(&self) -> usize {
        self.cfg.k
    }

    fn drain_events(&mut self, t: u64, out: &mut Vec<TopkEvent>) {
        self.events.drain(&self.coord, t, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_net::id::true_topk;

    #[test]
    fn threaded_monitor_matches_sequential_twin() {
        let cfg = MonitorConfig::new(8, 3);
        let mut thr = ThreadedTopkMonitor::new(cfg, 42);
        let mut seq = TopkMonitor::new(cfg, 42);
        let rows: Vec<Vec<u64>> = vec![
            vec![5, 80, 20, 70, 10, 60, 30, 40],
            vec![5, 80, 20, 70, 10, 60, 30, 40],
            vec![90, 80, 20, 70, 10, 60, 30, 40],
        ];
        for (t, row) in rows.iter().enumerate() {
            thr.step(t as u64, row);
            seq.step(t as u64, row);
            assert_eq!(thr.topk(), seq.topk());
        }
        assert_eq!(thr.topk(), true_topk(rows.last().unwrap(), 3));
        let (a, b) = (thr.ledger(), seq.ledger());
        assert_eq!((a.up, a.down, a.broadcast), (b.up, b.down, b.broadcast));
        assert_eq!(a.total_bits(), b.total_bits());
    }

    #[test]
    fn chaotic_monitor_commits_fault_free_answers() {
        let cfg = MonitorConfig::new(10, 3);
        let mut chaotic =
            ThreadedTopkMonitor::new_chaotic(cfg, 42, topk_net::chaos::ChaosPolicy::from_seed(7));
        let mut twin = TopkMonitor::new(cfg, 42);
        let mut row: Vec<u64> = (1..=10).map(|v| v * 50).collect();
        for t in 0..40 {
            // Churn around the top-k boundary to force protocol traffic.
            row[(t % 10) as usize] = 100 + (t * 37) % 400;
            chaotic.step(t, &row);
            twin.step(t, &row);
            assert_eq!(chaotic.topk(), twin.topk(), "t={t}");
            assert_eq!(
                chaotic.coordinator().current_threshold(),
                twin.coordinator().current_threshold(),
                "t={t}"
            );
        }
        assert!(
            chaotic.recovery().injected_total() > 0,
            "a from_seed policy over 40 churn steps must inject faults: {:?}",
            chaotic.recovery()
        );
        // Committed protocol counters match the twin exactly; only the
        // recovery block records the faults.
        let scrubbed = RunMetrics {
            recovery: Default::default(),
            ..*chaotic.metrics()
        };
        assert_eq!(scrubbed, *twin.metrics());
        assert_eq!(chaotic.metrics().recovery, *chaotic.recovery());
    }

    #[test]
    fn silent_steps_send_no_frames_to_quiet_nodes() {
        let cfg = MonitorConfig::new(64, 4);
        let mut thr = ThreadedTopkMonitor::new(cfg, 7);
        let row: Vec<u64> = (1..=64).map(|v| v * 100).collect();
        thr.step(0, &row);
        let after_init = thr.sync_frames();
        for t in 1..50 {
            thr.step(t, &row);
        }
        assert_eq!(
            thr.sync_frames(),
            after_init,
            "constant rows must cost zero frames after init"
        );
        assert_eq!(thr.silent_steps(), 49);
    }
}
