//! The node-side state machine of Algorithm 1, in a flat one-cache-line
//! layout.
//!
//! A node stores O(1) state: its current value, its threshold filter
//! `(M, in_topk)`, and — while a protocol episode is live — the episode
//! kind plus its scheduled fire phase. It reacts to observations (filter
//! check + episode start on violation, lines 3–9) and to coordinator
//! broadcasts (protocol announcements, handler/reset start signals, filter
//! updates).
//!
//! # Fire-round calendar
//!
//! Algorithm 2 participants never act again after sending or deactivating,
//! so instead of flipping a `2^r/N` coin every round the node samples its
//! first-send round **once** when the episode starts (one draw from the
//! precomputed [`FireDist`](topk_proto::schedule::FireDist) in the shared
//! [`NodeParams`] block — distributionally identical, see
//! `topk_proto::schedule`) and announces the wake phase to the runtime via
//! [`RoundAction::wake_at`]. Announcements it skips are replayed at its
//! next poll; a dominating one simply withdraws the scheduled send — the
//! lazy form of line 8's deactivation. Protocol rounds therefore visit
//! only their scheduled firers.
//!
//! # Flat layout
//!
//! The seed node embedded a `MonitorConfig` copy, a boxed-enum episode
//! (`Participant` per protocol), and a ~136-byte ChaCha RNG — ~300 bytes
//! per node. The episode is now three packed fields (`flags` kind/bits,
//! `aux` fire-phase-or-rank, the implicit report `(id, value)`), the
//! config is one shared `Arc<NodeParams>`, and the RNG a two-word
//! counter-based splitmix64 substream ([`CounterRng`]) — the whole machine
//! fits in a cache line (`size_of` pinned below), which is what makes the
//! episode-start fan-outs at n = 10⁶ memory-bandwidth cheap.

use std::sync::Arc;

use topk_net::behavior::{NodeBehavior, ObserveAction, RoundAction};
use topk_net::id::{NodeId, Value};
use topk_net::rng::CounterRng;
use topk_net::wire::Report;

use topk_proto::extremum::{MaxOrder, MinOrder, ProtocolOrder};

use crate::config::ResetStrategy;
use crate::msg::{DownMsg, UpMsg};
use crate::params::NodeParams;

/// Live episode kind — `flags & KIND_MASK`.
const KIND_IDLE: u8 = 0;
const KIND_VIOL_MIN: u8 = 1;
const KIND_VIOL_MAX: u8 = 2;
const KIND_HANDLER_MIN: u8 = 3;
const KIND_HANDLER_MAX: u8 = 4;
const KIND_RESET: u8 = 5;
const KIND_MASK: u8 = 0b0000_0111;
/// Participant still live: `aux` holds the absolute fire phase.
const ACTIVE: u8 = 0b0000_1000;
/// Reset winner: `aux` holds the announced 1-based rank.
const SELECTED: u8 = 0b0001_0000;
/// Filter membership side.
const IN_TOPK: u8 = 0b0010_0000;
/// Filter assigned (before the `t = 0` reset completes nothing violates).
const FILTER_OK: u8 = 0b0100_0000;

/// One distributed node of the monitoring system (flat layout — see the
/// module docs; the `size_of` pin lives in the tests below).
#[derive(Clone)]
pub struct NodeMachine {
    params: Arc<NodeParams>,
    value: Value,
    /// Filter threshold `M` (valid iff `FILTER_OK`).
    filter_m: Value,
    rng: CounterRng,
    id: NodeId,
    /// `ACTIVE` ⇒ scheduled fire phase; `SELECTED` ⇒ reset winner rank.
    /// The two are mutually exclusive (a selected node's participant is
    /// done), which is what lets them share the word.
    aux: u32,
    flags: u8,
}

impl NodeMachine {
    /// Build node `id` with its private RNG substream of `master_seed`,
    /// sharing the monitor-wide parameter block.
    pub fn new(id: NodeId, params: &Arc<NodeParams>, master_seed: u64) -> Self {
        assert!(id.idx() < params.n as usize);
        NodeMachine {
            params: Arc::clone(params),
            value: 0,
            filter_m: 0,
            rng: CounterRng::substream(master_seed, id.0 as u64),
            id,
            aux: 0,
            flags: 0,
        }
    }

    /// The node's current observation (test/debug accessor).
    pub fn value(&self) -> Value {
        self.value
    }

    /// Whether the node currently believes it is in the top-k.
    pub fn in_topk(&self) -> bool {
        self.flags & (FILTER_OK | IN_TOPK) == FILTER_OK | IN_TOPK
    }

    /// The node's current filter threshold, if initialized.
    pub fn threshold(&self) -> Option<Value> {
        (self.flags & FILTER_OK != 0).then_some(self.filter_m)
    }

    /// RNG draws consumed so far — with the fire-round calendar this is
    /// exactly one per protocol episode, and zero for probability-1
    /// schedules (`k = 1` min protocols, `n_bound = 1` participants).
    pub fn rng_draws(&self) -> u64 {
        self.rng.draws()
    }

    #[inline]
    fn kind(&self) -> u8 {
        self.flags & KIND_MASK
    }

    #[inline]
    fn my_report(&self) -> Report {
        Report {
            id: self.id,
            value: self.value,
        }
    }

    /// Start a fresh episode at node-phase `phase_now`: sample the fire
    /// round once and schedule the send at `phase_now + r*` (round 0 of the
    /// episode is this very phase, so `r* = 0` fires in the current poll).
    fn start_episode(&mut self, kind: u8, phase_now: u32) {
        let dist = match kind {
            KIND_VIOL_MIN | KIND_HANDLER_MIN => &self.params.dist_min,
            KIND_VIOL_MAX | KIND_HANDLER_MAX => &self.params.dist_max,
            _ => &self.params.dist_reset,
        };
        let r = dist.sample(&mut self.rng);
        self.flags = (self.flags & !(KIND_MASK | SELECTED)) | kind | ACTIVE;
        self.aux = phase_now + r;
    }

    /// Lazy deactivation (Algorithm 2 line 8): withdraw the scheduled send
    /// if the announced report cannot be beaten.
    fn apply_announcement<O: ProtocolOrder>(&mut self, announced: Report) {
        if !O::better(self.my_report(), announced) {
            self.flags &= !ACTIVE;
        }
    }

    /// Resolve the schedule at node-phase `m`: fire if due, otherwise
    /// re-state the calendar entry.
    fn resolve(&mut self, m: u32) -> RoundAction<UpMsg> {
        if self.flags & ACTIVE == 0 {
            return RoundAction::idle();
        }
        debug_assert!(self.aux >= m, "missed the scheduled fire phase");
        if self.aux == m {
            self.flags &= !ACTIVE;
            let report = self.my_report();
            let up = match self.kind() {
                KIND_VIOL_MIN => UpMsg::ViolMin(report),
                KIND_VIOL_MAX => UpMsg::ViolMax(report),
                KIND_HANDLER_MIN | KIND_HANDLER_MAX => UpMsg::Handler(report),
                _ => UpMsg::Reset(report),
            };
            RoundAction {
                up: Some(up),
                engaged: false,
                wake_at: None,
            }
        } else {
            RoundAction {
                up: None,
                engaged: true,
                wake_at: Some(self.aux),
            }
        }
    }

    /// Apply one broadcast at node-phase `m` (scheduled nodes receive the
    /// rounds they skipped replayed in order, so `m` may be well past the
    /// broadcast's emission round — every handler below is insensitive to
    /// that lag; announcements only ever *withdraw* the scheduled send).
    fn apply_broadcast(&mut self, b: &DownMsg, m: u32) {
        match *b {
            DownMsg::ViolMinAnnounce(rep) => {
                if self.kind() == KIND_VIOL_MIN && self.flags & ACTIVE != 0 {
                    self.apply_announcement::<MinOrder>(rep);
                }
            }
            DownMsg::ViolMaxAnnounce(rep) => {
                if self.kind() == KIND_VIOL_MAX && self.flags & ACTIVE != 0 {
                    self.apply_announcement::<MaxOrder>(rep);
                }
            }
            DownMsg::HandlerAnnounce(rep) => match self.kind() {
                KIND_HANDLER_MIN if self.flags & ACTIVE != 0 => {
                    self.apply_announcement::<MinOrder>(rep);
                }
                KIND_HANDLER_MAX if self.flags & ACTIVE != 0 => {
                    self.apply_announcement::<MaxOrder>(rep);
                }
                _ => {}
            },
            DownMsg::ResetAnnounce(rep) | DownMsg::ResetBar(rep) => {
                // Legacy running maximum and batched (k+1)-th-best bar drive
                // the same deactivation comparison: withdraw unless we beat
                // the announced report.
                if self.kind() == KIND_RESET && self.flags & ACTIVE != 0 {
                    self.apply_announcement::<MaxOrder>(rep);
                }
            }
            DownMsg::HandlerStartMin => {
                if self.in_topk() {
                    self.start_episode(KIND_HANDLER_MIN, m);
                }
            }
            DownMsg::HandlerStartMax => {
                if self.flags & (FILTER_OK | IN_TOPK) == FILTER_OK {
                    self.start_episode(KIND_HANDLER_MAX, m);
                }
            }
            DownMsg::Midpoint(new_m) | DownMsg::Band(new_m) => {
                // A band announcement is a midpoint to the node: adopt the
                // new common threshold, keep membership. The ε-tolerance is
                // entirely the coordinator's; nodes need no extra state.
                if self.flags & FILTER_OK != 0 {
                    self.filter_m = new_m;
                }
                self.flags &= !(KIND_MASK | ACTIVE | SELECTED);
            }
            DownMsg::ResetStart => {
                self.start_episode(KIND_RESET, m);
            }
            DownMsg::ResetWinner { rank, report } => {
                if self.kind() != KIND_RESET {
                    // A node can only miss reset state if it joined late —
                    // impossible in the synchronous model; ignore defensively.
                    return;
                }
                if report.id == self.id {
                    self.flags = (self.flags & !ACTIVE) | SELECTED;
                    self.aux = rank;
                } else if self.params.reset == ResetStrategy::Legacy && self.flags & SELECTED == 0 {
                    // Legacy only: the winner announcement doubles as the
                    // next iteration's start signal — fresh schedule.
                    // (Batched resets select every winner in the single
                    // sweep already run; non-winners just stay quiet.)
                    self.start_episode(KIND_RESET, m);
                }
            }
            DownMsg::ResetDone { threshold } => {
                let selected_topk =
                    self.flags & SELECTED != 0 && self.aux as usize <= self.params.k as usize;
                self.filter_m = threshold;
                self.flags &= !(KIND_MASK | ACTIVE | SELECTED | IN_TOPK);
                self.flags |= FILTER_OK;
                if selected_topk {
                    self.flags |= IN_TOPK;
                }
            }
        }
    }
}

impl NodeBehavior for NodeMachine {
    type Up = UpMsg;
    type Down = DownMsg;

    /// `observe` only stores the value and checks the filter: an unchanged
    /// value on an idle node can neither newly violate (the filter did not
    /// move) nor touch the RNG, so the runtime may skip the call — this is
    /// what makes Algorithm 1's silent steps O(#changed) instead of O(n).
    const SPARSE_OBSERVE: bool = true;

    fn id(&self) -> NodeId {
        self.id
    }

    fn observe(&mut self, _t: u64, value: Value) -> ObserveAction<UpMsg> {
        self.value = value;
        debug_assert!(
            self.kind() == KIND_IDLE,
            "protocol episodes must conclude within their step"
        );
        if self.flags & FILTER_OK == 0 {
            return ObserveAction::idle();
        }
        // With slack ε the filter is a hysteresis band around M:
        // [M−ε, ∞] for top-k, [−∞, M+ε] for the rest (ε = 0 is the
        // paper's exact algorithm).
        let in_top = self.flags & IN_TOPK != 0;
        let violated = if in_top {
            value.saturating_add(self.params.slack) < self.filter_m
        } else {
            value > self.filter_m.saturating_add(self.params.slack)
        };
        if !violated {
            return ObserveAction::idle();
        }
        // Lines 4–8: join the appropriate violation protocol; observe is
        // node-phase 0, so the round-0 coin is the `r* = 0` case of the
        // one-draw schedule and fires right here.
        self.start_episode(if in_top { KIND_VIOL_MIN } else { KIND_VIOL_MAX }, 0);
        let act = self.resolve(0);
        ObserveAction {
            up: act.up,
            engaged: act.engaged,
            wake_at: act.wake_at,
        }
    }

    fn micro_round(
        &mut self,
        _t: u64,
        m: u32,
        bcasts: &[DownMsg],
        ucast: Option<&DownMsg>,
    ) -> RoundAction<UpMsg> {
        debug_assert!(ucast.is_none(), "Algorithm 1 never unicasts");
        for b in bcasts {
            self.apply_broadcast(b, m);
        }
        self.resolve(m)
    }

    /// The flat layout makes a checkpoint one cache-line copy (the `Arc`
    /// parameter block is shared, not duplicated).
    fn checkpoint(&self) -> Option<Self> {
        Some(self.clone())
    }

    /// Restore the step-start protocol state but keep the RNG cursor: an
    /// aborted attempt's draws are burned, so the re-run is a fresh
    /// Las Vegas trial rather than a replay of the crashed one.
    fn rollback(&mut self, at: &Self) {
        let rng = self.rng.clone();
        *self = at.clone();
        self.rng = rng;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MonitorConfig;
    use topk_proto::extremum::BroadcastPolicy;

    fn params(n: usize, k: usize) -> Arc<NodeParams> {
        NodeParams::shared(&MonitorConfig::new(n, k).with_policy(BroadcastPolicy::OnChange))
    }

    fn node(id: u32, n: usize, k: usize, seed: u64) -> NodeMachine {
        NodeMachine::new(NodeId(id), &params(n, k), seed)
    }

    /// The whole point of the flat layout: every node fits in one cache
    /// line. Guard the bound so a future field does not silently blow the
    /// per-node footprint back up.
    #[test]
    fn node_machine_fits_in_a_cache_line() {
        let size = std::mem::size_of::<NodeMachine>();
        assert!(size < 64, "NodeMachine is {size} B, must stay under 64 B");
    }

    #[test]
    fn uninitialized_node_never_violates() {
        let mut node = node(0, 4, 2, 1);
        let act = node.observe(0, 123);
        assert!(act.up.is_none() && !act.engaged);
        assert_eq!(node.value(), 123);
        assert!(node.threshold().is_none());
    }

    #[test]
    fn reset_flow_assigns_membership() {
        let mut node = node(2, 4, 2, 7);
        node.observe(0, 50);
        // ResetStart wakes the node as a participant.
        let act = node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        // It may or may not send in round 0 — but it must be live.
        assert!(act.engaged || act.up.is_some());
        // It wins rank 2.
        let win = DownMsg::ResetWinner {
            rank: 2,
            report: Report {
                id: NodeId(2),
                value: 50,
            },
        };
        let act = node.micro_round(0, 2, &[win], None);
        assert!(act.up.is_none() && !act.engaged, "selected nodes go quiet");
        // Done: threshold 40, rank 2 ≤ k=2 ⇒ in top-k.
        node.micro_round(0, 3, &[DownMsg::ResetDone { threshold: 40 }], None);
        assert!(node.in_topk());
        assert_eq!(node.threshold(), Some(40));
    }

    #[test]
    fn rank_beyond_k_is_not_topk() {
        let mut node = node(1, 4, 1, 3);
        node.observe(0, 10);
        node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        let win = DownMsg::ResetWinner {
            rank: 2,
            report: Report {
                id: NodeId(1),
                value: 10,
            },
        };
        node.micro_round(0, 2, &[win], None);
        node.micro_round(0, 3, &[DownMsg::ResetDone { threshold: 15 }], None);
        assert!(!node.in_topk());
    }

    #[test]
    fn topk_node_violates_below_threshold_only() {
        let mut node = node(0, 8, 4, 5);
        node.observe(0, 100);
        node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        node.micro_round(
            0,
            2,
            &[DownMsg::ResetWinner {
                rank: 1,
                report: Report {
                    id: NodeId(0),
                    value: 100,
                },
            }],
            None,
        );
        node.micro_round(0, 3, &[DownMsg::ResetDone { threshold: 60 }], None);
        assert!(node.in_topk());
        // At the threshold: fine. Above: fine. Below: violation episode.
        assert!(node.observe(1, 60).up.is_none());
        assert!(!node.observe(2, 99).engaged);
        let act = node.observe(3, 59);
        // k=4 ⇒ min-protocol bound 4 ⇒ round 0 fires with prob 1/4; the node
        // is live either way.
        assert!(act.engaged || act.up.is_some());
        if act.engaged {
            let wake = act.wake_at.expect("live participants schedule a wake");
            assert!((1..=2).contains(&wake), "min-protocol(4) has rounds 0..=2");
        }
    }

    #[test]
    fn non_topk_node_violates_above_threshold_only() {
        let mut node = node(3, 8, 4, 5);
        node.observe(0, 10);
        node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        // Someone else wins every announced rank; node is never selected.
        for rank in 1..=4 {
            node.micro_round(
                0,
                1 + rank,
                &[DownMsg::ResetWinner {
                    rank,
                    report: Report {
                        id: NodeId(7),
                        value: 1000 - rank as u64,
                    },
                }],
                None,
            );
        }
        node.micro_round(0, 9, &[DownMsg::ResetDone { threshold: 60 }], None);
        assert!(!node.in_topk());
        assert!(
            node.observe(1, 60).up.is_none(),
            "at threshold: no violation"
        );
        let act = node.observe(2, 61);
        assert!(
            act.engaged || act.up.is_some(),
            "above threshold: violation"
        );
    }

    #[test]
    fn violation_protocol_eventually_reports() {
        // k=1 ⇒ the min-protocol schedule is the probability-1 round 0: the
        // violator fires in `observe` itself, and consumes no randomness.
        let mut node = node(0, 16, 1, 11);
        node.observe(0, 100);
        node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        node.micro_round(
            0,
            2,
            &[DownMsg::ResetWinner {
                rank: 1,
                report: Report {
                    id: NodeId(0),
                    value: 100,
                },
            }],
            None,
        );
        node.micro_round(0, 3, &[DownMsg::ResetDone { threshold: 50 }], None);
        let draws_before = node.rng_draws();
        // Violate: value drops below 50. k=1 ⇒ bound 1 ⇒ sends immediately.
        let act = node.observe(1, 10);
        assert!(act.up.is_some(), "k=1 min protocol sends in round 0");
        match act.up.unwrap() {
            UpMsg::ViolMin(r) => {
                assert_eq!(r.value, 10);
                assert_eq!(r.id, NodeId(0));
            }
            other => panic!("expected ViolMin, got {other:?}"),
        }
        assert_eq!(
            node.rng_draws(),
            draws_before,
            "probability-1 schedules must perform zero draws"
        );
    }

    #[test]
    fn midpoint_updates_threshold_preserving_membership() {
        let mut node = node(0, 4, 2, 13);
        node.observe(0, 80);
        node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        node.micro_round(
            0,
            2,
            &[DownMsg::ResetWinner {
                rank: 1,
                report: Report {
                    id: NodeId(0),
                    value: 80,
                },
            }],
            None,
        );
        node.micro_round(0, 3, &[DownMsg::ResetDone { threshold: 50 }], None);
        assert!(node.in_topk());
        node.micro_round(1, 1, &[DownMsg::Midpoint(70)], None);
        assert!(node.in_topk(), "midpoint must not change membership");
        assert_eq!(node.threshold(), Some(70));
        // A band announcement behaves identically on the node side.
        node.micro_round(2, 1, &[DownMsg::Band(65)], None);
        assert!(node.in_topk(), "band must not change membership");
        assert_eq!(node.threshold(), Some(65));
    }

    #[test]
    fn handler_start_only_wakes_matching_side() {
        let mk = |id: u32, in_top: bool, seed: u64| {
            let mut node = node(id, 4, 2, seed);
            node.observe(0, if in_top { 100 } else { 10 });
            node.micro_round(0, 1, &[DownMsg::ResetStart], None);
            if in_top {
                node.micro_round(
                    0,
                    2,
                    &[DownMsg::ResetWinner {
                        rank: 1,
                        report: Report {
                            id: NodeId(id),
                            value: 100,
                        },
                    }],
                    None,
                );
            }
            node.micro_round(0, 5, &[DownMsg::ResetDone { threshold: 50 }], None);
            node
        };
        let mut top = mk(0, true, 1);
        let mut bot = mk(1, false, 2);
        // HandlerStartMax wakes only the non-top-k node.
        let a = top.micro_round(1, 1, &[DownMsg::HandlerStartMax], None);
        assert!(a.up.is_none() && !a.engaged);
        let b = bot.micro_round(1, 1, &[DownMsg::HandlerStartMax], None);
        assert!(b.up.is_some() || b.engaged);
        // HandlerStartMin wakes only the top-k node.
        let mut top2 = mk(2, true, 3);
        let mut bot2 = mk(3, false, 4);
        let a2 = top2.micro_round(1, 1, &[DownMsg::HandlerStartMin], None);
        assert!(a2.up.is_some() || a2.engaged);
        let b2 = bot2.micro_round(1, 1, &[DownMsg::HandlerStartMin], None);
        assert!(b2.up.is_none() && !b2.engaged);
    }

    /// The lazy-deactivation path: a scheduled participant that receives a
    /// dominating announcement (possibly replayed late) withdraws instead
    /// of firing — and a non-dominating one leaves the schedule alone.
    #[test]
    fn replayed_dominating_announcement_withdraws_the_send() {
        // Find a seed whose reset schedule defers the send past round 0 so
        // the node parks on the calendar.
        for seed in 0..64 {
            let mut n = node(2, 64, 2, seed);
            n.observe(0, 500);
            let act = n.micro_round(0, 1, &[DownMsg::ResetStart], None);
            if act.up.is_some() {
                continue; // fired immediately — try another seed
            }
            let wake = act.wake_at.expect("deferred send must schedule");
            assert!(act.engaged && wake > 1);
            // The catch-up slice at fire time carries two bars: one beaten,
            // one dominating. The node must withdraw silently.
            let beaten = DownMsg::ResetBar(Report {
                id: NodeId(9),
                value: 100,
            });
            let dominating = DownMsg::ResetBar(Report {
                id: NodeId(9),
                value: 501,
            });
            let act = n.micro_round(0, wake, &[beaten, dominating], None);
            assert!(act.up.is_none() && !act.engaged, "dominated ⇒ withdraw");
            return;
        }
        panic!("no seed deferred the send — schedule distribution broken?");
    }

    /// A deferred participant left alone fires exactly at its wake phase
    /// with its report.
    #[test]
    fn deferred_send_fires_at_the_scheduled_phase() {
        for seed in 0..64 {
            let mut n = node(2, 64, 2, seed);
            n.observe(0, 500);
            let act = n.micro_round(0, 1, &[DownMsg::ResetStart], None);
            if act.up.is_some() {
                continue;
            }
            let wake = act.wake_at.unwrap();
            let act = n.micro_round(0, wake, &[], None);
            match act.up {
                Some(UpMsg::Reset(r)) => {
                    assert_eq!(r.value, 500);
                    assert_eq!(r.id, NodeId(2));
                }
                other => panic!("expected the scheduled Reset report, got {other:?}"),
            }
            assert!(!act.engaged, "a fired participant never acts again");
            return;
        }
        panic!("no seed deferred the send");
    }
}
