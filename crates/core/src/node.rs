//! The node-side state machine of Algorithm 1.
//!
//! A node stores O(1) state: its current value, its threshold filter
//! `(M, in_topk)`, and — while a protocol episode is live — one protocol
//! participant. It reacts to observations (filter check + round-0 coin flip
//! on violation, lines 3–9) and to coordinator broadcasts (protocol round
//! announcements, handler/reset start signals, filter updates).

use rand_chacha::ChaCha12Rng;

use topk_net::behavior::{NodeBehavior, ObserveAction, RoundAction};
use topk_net::id::{NodeId, Value};
use topk_net::rng::substream_rng;
use topk_net::wire::Report;

use topk_proto::extremum::{MaxParticipant, MinParticipant, Participant};

use crate::config::{MonitorConfig, ResetStrategy};
use crate::msg::{DownMsg, UpMsg};

/// The node's filter: uninitialized (before the `t=0` reset completes) or
/// the canonical shared-threshold shape of Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeFilter {
    /// No filter assigned yet — never violates; waits for the first reset.
    Uninit,
    /// `[m, ∞]` if `in_topk` else `[−∞, m]`.
    Threshold { m: Value, in_topk: bool },
}

/// Live protocol episode on the node.
#[derive(Debug, Clone)]
enum Proto {
    Idle,
    /// Violation-phase MINIMUMPROTOCOL(k) participant (was in top-k).
    ViolMin(MinParticipant),
    /// Violation-phase MAXIMUMPROTOCOL(n−k) participant.
    ViolMax(MaxParticipant),
    /// Handler MINIMUMPROTOCOL(k) over all top-k.
    HandlerMin(MinParticipant),
    /// Handler MAXIMUMPROTOCOL(n−k) over all non-top-k.
    HandlerMax(MaxParticipant),
    /// FILTERRESET participant (`None` once selected or between iterations).
    Reset {
        part: Option<MaxParticipant>,
        selected_rank: Option<u32>,
    },
}

/// One distributed node of the monitoring system.
pub struct NodeMachine {
    id: NodeId,
    cfg: MonitorConfig,
    value: Value,
    filter: NodeFilter,
    proto: Proto,
    /// Round index of the live protocol (0 at the episode's first flip).
    my_round: u32,
    /// Latest relevant coordinator announcement for the live protocol.
    last_announce: Option<Report>,
    rng: ChaCha12Rng,
}

impl NodeMachine {
    /// Build node `id` with its private RNG substream of `master_seed`.
    pub fn new(id: NodeId, cfg: MonitorConfig, master_seed: u64) -> Self {
        assert!(id.idx() < cfg.n);
        NodeMachine {
            id,
            cfg,
            value: 0,
            filter: NodeFilter::Uninit,
            proto: Proto::Idle,
            my_round: 0,
            last_announce: None,
            rng: substream_rng(master_seed, id.0 as u64),
        }
    }

    /// The node's current observation (test/debug accessor).
    pub fn value(&self) -> Value {
        self.value
    }

    /// Whether the node currently believes it is in the top-k.
    pub fn in_topk(&self) -> bool {
        matches!(self.filter, NodeFilter::Threshold { in_topk: true, .. })
    }

    /// The node's current filter threshold, if initialized.
    pub fn threshold(&self) -> Option<Value> {
        match self.filter {
            NodeFilter::Threshold { m, .. } => Some(m),
            NodeFilter::Uninit => None,
        }
    }

    /// Start a fresh protocol episode (round counter and announcement reset).
    fn start_episode(&mut self, proto: Proto) {
        self.proto = proto;
        self.my_round = 0;
        self.last_announce = None;
    }

    /// Flip the live participant's coin for `self.my_round`; wrap the report.
    fn flip(&mut self) -> (Option<UpMsg>, bool) {
        fn act<O: topk_proto::extremum::ProtocolOrder>(
            p: &mut Participant<O>,
            r: u32,
            ann: Option<Report>,
            rng: &mut ChaCha12Rng,
        ) -> (Option<Report>, bool) {
            let sent = p.round(r, ann, rng);
            (sent, p.is_active())
        }

        let r = self.my_round;
        let ann = self.last_announce;
        match &mut self.proto {
            Proto::Idle => (None, false),
            Proto::ViolMin(p) => {
                let (rep, active) = act(p, r, ann, &mut self.rng);
                (rep.map(UpMsg::ViolMin), active)
            }
            Proto::ViolMax(p) => {
                let (rep, active) = act(p, r, ann, &mut self.rng);
                (rep.map(UpMsg::ViolMax), active)
            }
            Proto::HandlerMin(p) => {
                let (rep, active) = act(p, r, ann, &mut self.rng);
                (rep.map(UpMsg::Handler), active)
            }
            Proto::HandlerMax(p) => {
                let (rep, active) = act(p, r, ann, &mut self.rng);
                (rep.map(UpMsg::Handler), active)
            }
            Proto::Reset { part: Some(p), .. } => {
                let (rep, active) = act(p, r, ann, &mut self.rng);
                (rep.map(UpMsg::Reset), active)
            }
            Proto::Reset { part: None, .. } => (None, false),
        }
    }

    /// Apply one broadcast. Returns `true` if the node should flip a fresh
    /// round-0 coin in this very micro-round (protocol start signals).
    fn apply_broadcast(&mut self, b: &DownMsg) -> bool {
        match *b {
            DownMsg::ViolMinAnnounce(rep) => {
                if matches!(self.proto, Proto::ViolMin(_)) {
                    self.last_announce = Some(rep);
                }
                false
            }
            DownMsg::ViolMaxAnnounce(rep) => {
                if matches!(self.proto, Proto::ViolMax(_)) {
                    self.last_announce = Some(rep);
                }
                false
            }
            DownMsg::HandlerAnnounce(rep) => {
                if matches!(self.proto, Proto::HandlerMin(_) | Proto::HandlerMax(_)) {
                    self.last_announce = Some(rep);
                }
                false
            }
            DownMsg::ResetAnnounce(rep) | DownMsg::ResetBar(rep) => {
                // Legacy running maximum and batched (k+1)-th-best bar drive
                // the same deactivation comparison: withdraw unless we beat
                // the announced report.
                if matches!(self.proto, Proto::Reset { part: Some(_), .. }) {
                    self.last_announce = Some(rep);
                }
                false
            }
            DownMsg::HandlerStartMin => {
                if self.in_topk() {
                    let p = Participant::new(self.id, self.value, self.cfg.k as u64);
                    self.start_episode(Proto::HandlerMin(p));
                    true
                } else {
                    false
                }
            }
            DownMsg::HandlerStartMax => {
                if matches!(self.filter, NodeFilter::Threshold { in_topk: false, .. }) {
                    let bound = (self.cfg.n - self.cfg.k) as u64;
                    let p = Participant::new(self.id, self.value, bound);
                    self.start_episode(Proto::HandlerMax(p));
                    true
                } else {
                    false
                }
            }
            DownMsg::Midpoint(m) => {
                if let NodeFilter::Threshold { in_topk, .. } = self.filter {
                    self.filter = NodeFilter::Threshold { m, in_topk };
                }
                self.proto = Proto::Idle;
                false
            }
            DownMsg::ResetStart => {
                // Legacy iterations run MAXIMUMPROTOCOL(n); the batched
                // sweep runs the k-select schedule, whose bound n/(k+1)
                // yields k+1 expected round-0 reports instead of one.
                let bound = match self.cfg.reset {
                    ResetStrategy::Legacy => self.cfg.n as u64,
                    ResetStrategy::Batched => {
                        topk_proto::kselect::sampling_bound(self.cfg.k + 1, self.cfg.n as u64)
                    }
                };
                let p = Participant::new(self.id, self.value, bound);
                self.start_episode(Proto::Reset {
                    part: Some(p),
                    selected_rank: None,
                });
                true
            }
            DownMsg::ResetWinner { rank, report } => {
                let Proto::Reset {
                    part,
                    selected_rank,
                } = &mut self.proto
                else {
                    // A node can only miss reset state if it joined late —
                    // impossible in the synchronous model; ignore defensively.
                    return false;
                };
                if report.id == self.id {
                    *selected_rank = Some(rank);
                    *part = None;
                    false
                } else if self.cfg.reset == ResetStrategy::Legacy && selected_rank.is_none() {
                    // Legacy only: the winner announcement doubles as the
                    // next iteration's start signal — fresh participant.
                    // (Batched resets select every winner in the single
                    // sweep already run; non-winners just stay quiet.)
                    *part = Some(Participant::new(self.id, self.value, self.cfg.n as u64));
                    self.my_round = 0;
                    self.last_announce = None;
                    true
                } else {
                    false
                }
            }
            DownMsg::ResetDone { threshold } => {
                let in_topk = match &self.proto {
                    Proto::Reset {
                        selected_rank: Some(r),
                        ..
                    } => (*r as usize) <= self.cfg.k,
                    _ => false,
                };
                self.filter = NodeFilter::Threshold {
                    m: threshold,
                    in_topk,
                };
                self.proto = Proto::Idle;
                false
            }
        }
    }
}

impl NodeBehavior for NodeMachine {
    type Up = UpMsg;
    type Down = DownMsg;

    /// `observe` only stores the value and checks the filter: an unchanged
    /// value on an idle node can neither newly violate (the filter did not
    /// move) nor touch the RNG, so the runtime may skip the call — this is
    /// what makes Algorithm 1's silent steps O(#changed) instead of O(n).
    const SPARSE_OBSERVE: bool = true;

    fn id(&self) -> NodeId {
        self.id
    }

    fn observe(&mut self, _t: u64, value: Value) -> ObserveAction<UpMsg> {
        self.value = value;
        debug_assert!(
            matches!(self.proto, Proto::Idle),
            "protocol episodes must conclude within their step"
        );
        match self.filter {
            NodeFilter::Uninit => ObserveAction::idle(),
            NodeFilter::Threshold { m, in_topk } => {
                // With slack ε the filter is a hysteresis band around M:
                // [M−ε, ∞] for top-k, [−∞, M+ε] for the rest (ε = 0 is the
                // paper's exact algorithm).
                let violated = if in_topk {
                    value.saturating_add(self.cfg.slack) < m
                } else {
                    value > m.saturating_add(self.cfg.slack)
                };
                if !violated {
                    return ObserveAction::idle();
                }
                // Lines 4–8: join the appropriate violation protocol and
                // flip the round-0 coin immediately.
                if in_topk {
                    let p = Participant::new(self.id, value, self.cfg.k as u64);
                    self.start_episode(Proto::ViolMin(p));
                } else {
                    let bound = (self.cfg.n - self.cfg.k) as u64;
                    let p = Participant::new(self.id, value, bound);
                    self.start_episode(Proto::ViolMax(p));
                }
                let (up, active) = self.flip();
                ObserveAction {
                    up,
                    engaged: active,
                }
            }
        }
    }

    fn micro_round(
        &mut self,
        _t: u64,
        _m: u32,
        bcasts: &[DownMsg],
        ucast: Option<&DownMsg>,
    ) -> RoundAction<UpMsg> {
        debug_assert!(ucast.is_none(), "Algorithm 1 never unicasts");
        let mut fresh_start = false;
        for b in bcasts {
            fresh_start |= self.apply_broadcast(b);
        }
        // Advance the live protocol: a fresh episode flips round 0 now;
        // an ongoing one flips its next round.
        let live = !matches!(self.proto, Proto::Idle | Proto::Reset { part: None, .. });
        if !live {
            return RoundAction::idle();
        }
        if !fresh_start {
            self.my_round += 1;
        }
        let (up, active) = self.flip();
        RoundAction {
            up,
            engaged: active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_proto::extremum::BroadcastPolicy;

    fn cfg(n: usize, k: usize) -> MonitorConfig {
        MonitorConfig::new(n, k).with_policy(BroadcastPolicy::OnChange)
    }

    #[test]
    fn uninitialized_node_never_violates() {
        let mut node = NodeMachine::new(NodeId(0), cfg(4, 2), 1);
        let act = node.observe(0, 123);
        assert!(act.up.is_none() && !act.engaged);
        assert_eq!(node.value(), 123);
        assert!(node.threshold().is_none());
    }

    #[test]
    fn reset_flow_assigns_membership() {
        let mut node = NodeMachine::new(NodeId(2), cfg(4, 2), 7);
        node.observe(0, 50);
        // ResetStart wakes the node as a participant.
        let act = node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        // It may or may not send in round 0 — but it must be live.
        assert!(act.engaged || act.up.is_some());
        // It wins rank 2.
        let win = DownMsg::ResetWinner {
            rank: 2,
            report: Report {
                id: NodeId(2),
                value: 50,
            },
        };
        let act = node.micro_round(0, 2, &[win], None);
        assert!(act.up.is_none() && !act.engaged, "selected nodes go quiet");
        // Done: threshold 40, rank 2 ≤ k=2 ⇒ in top-k.
        node.micro_round(0, 3, &[DownMsg::ResetDone { threshold: 40 }], None);
        assert!(node.in_topk());
        assert_eq!(node.threshold(), Some(40));
    }

    #[test]
    fn rank_beyond_k_is_not_topk() {
        let mut node = NodeMachine::new(NodeId(1), cfg(4, 1), 3);
        node.observe(0, 10);
        node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        let win = DownMsg::ResetWinner {
            rank: 2,
            report: Report {
                id: NodeId(1),
                value: 10,
            },
        };
        node.micro_round(0, 2, &[win], None);
        node.micro_round(0, 3, &[DownMsg::ResetDone { threshold: 15 }], None);
        assert!(!node.in_topk());
    }

    #[test]
    fn topk_node_violates_below_threshold_only() {
        let mut node = NodeMachine::new(NodeId(0), cfg(8, 4), 5);
        node.observe(0, 100);
        node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        node.micro_round(
            0,
            2,
            &[DownMsg::ResetWinner {
                rank: 1,
                report: Report {
                    id: NodeId(0),
                    value: 100,
                },
            }],
            None,
        );
        node.micro_round(0, 3, &[DownMsg::ResetDone { threshold: 60 }], None);
        assert!(node.in_topk());
        // At the threshold: fine. Above: fine. Below: violation episode.
        assert!(node.observe(1, 60).up.is_none());
        assert!(!node.observe(2, 99).engaged);
        let act = node.observe(3, 59);
        // k=4 ⇒ min-protocol bound 4 ⇒ round 0 flips with prob 1/4; the node
        // is live either way.
        assert!(act.engaged || act.up.is_some());
    }

    #[test]
    fn non_topk_node_violates_above_threshold_only() {
        let mut node = NodeMachine::new(NodeId(3), cfg(8, 4), 5);
        node.observe(0, 10);
        node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        // Someone else wins every announced rank; node is never selected.
        for rank in 1..=4 {
            node.micro_round(
                0,
                1 + rank,
                &[DownMsg::ResetWinner {
                    rank,
                    report: Report {
                        id: NodeId(7),
                        value: 1000 - rank as u64,
                    },
                }],
                None,
            );
        }
        node.micro_round(0, 9, &[DownMsg::ResetDone { threshold: 60 }], None);
        assert!(!node.in_topk());
        assert!(
            node.observe(1, 60).up.is_none(),
            "at threshold: no violation"
        );
        let act = node.observe(2, 61);
        assert!(
            act.engaged || act.up.is_some(),
            "above threshold: violation"
        );
    }

    #[test]
    fn violation_protocol_eventually_reports() {
        // Drive a violating node through silent micro-rounds: by the final
        // round it must have sent (probability-1 round).
        let mut node = NodeMachine::new(NodeId(0), cfg(16, 1), 11);
        node.observe(0, 100);
        node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        node.micro_round(
            0,
            2,
            &[DownMsg::ResetWinner {
                rank: 1,
                report: Report {
                    id: NodeId(0),
                    value: 100,
                },
            }],
            None,
        );
        node.micro_round(0, 3, &[DownMsg::ResetDone { threshold: 50 }], None);
        // Violate: value drops below 50. k=1 ⇒ bound 1 ⇒ sends immediately.
        let act = node.observe(1, 10);
        assert!(act.up.is_some(), "k=1 min protocol sends in round 0");
        match act.up.unwrap() {
            UpMsg::ViolMin(r) => {
                assert_eq!(r.value, 10);
                assert_eq!(r.id, NodeId(0));
            }
            other => panic!("expected ViolMin, got {other:?}"),
        }
    }

    #[test]
    fn midpoint_updates_threshold_preserving_membership() {
        let mut node = NodeMachine::new(NodeId(0), cfg(4, 2), 13);
        node.observe(0, 80);
        node.micro_round(0, 1, &[DownMsg::ResetStart], None);
        node.micro_round(
            0,
            2,
            &[DownMsg::ResetWinner {
                rank: 1,
                report: Report {
                    id: NodeId(0),
                    value: 80,
                },
            }],
            None,
        );
        node.micro_round(0, 3, &[DownMsg::ResetDone { threshold: 50 }], None);
        assert!(node.in_topk());
        node.micro_round(1, 1, &[DownMsg::Midpoint(70)], None);
        assert!(node.in_topk(), "midpoint must not change membership");
        assert_eq!(node.threshold(), Some(70));
    }

    #[test]
    fn handler_start_only_wakes_matching_side() {
        let mk = |id: u32, in_top: bool, seed: u64| {
            let mut node = NodeMachine::new(NodeId(id), cfg(4, 2), seed);
            node.observe(0, if in_top { 100 } else { 10 });
            node.micro_round(0, 1, &[DownMsg::ResetStart], None);
            if in_top {
                node.micro_round(
                    0,
                    2,
                    &[DownMsg::ResetWinner {
                        rank: 1,
                        report: Report {
                            id: NodeId(id),
                            value: 100,
                        },
                    }],
                    None,
                );
            }
            node.micro_round(0, 5, &[DownMsg::ResetDone { threshold: 50 }], None);
            node
        };
        let mut top = mk(0, true, 1);
        let mut bot = mk(1, false, 2);
        // HandlerStartMax wakes only the non-top-k node.
        let a = top.micro_round(1, 1, &[DownMsg::HandlerStartMax], None);
        assert!(a.up.is_none() && !a.engaged);
        let b = bot.micro_round(1, 1, &[DownMsg::HandlerStartMax], None);
        assert!(b.up.is_some() || b.engaged);
        // HandlerStartMin wakes only the top-k node.
        let mut top2 = mk(2, true, 3);
        let mut bot2 = mk(3, false, 4);
        let a2 = top2.micro_round(1, 1, &[DownMsg::HandlerStartMin], None);
        assert!(a2.up.is_some() || a2.engaged);
        let b2 = bot2.micro_round(1, 1, &[DownMsg::HandlerStartMin], None);
        assert!(b2.up.is_none() && !b2.engaged);
    }
}
