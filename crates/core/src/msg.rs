//! Message vocabulary of Algorithm 1.
//!
//! Every payload is a constant number of `(id, value)` words plus a tag, so
//! all messages respect the model's `O(log n + log max v)` size budget
//! (enforced by the [`WireSize`] impls; see `topk-net::wire`).
//!
//! All coordinator emissions are *broadcasts* — Algorithm 1 never needs a
//! unicast (membership is conveyed by winner announcements whose addressee
//! self-identifies). A correctness test pins `ledger.down == 0`.

use topk_net::id::Value;
use topk_net::wire::{varint_bits, Report, WireSize};

/// Node → coordinator messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpMsg {
    /// Report within the violation-phase MINIMUMPROTOCOL(k) (line 5): the
    /// sender was in top-k at `t−1` and fell below its filter.
    ViolMin(Report),
    /// Report within the violation-phase MAXIMUMPROTOCOL(n−k) (line 7).
    ViolMax(Report),
    /// Report within a handler-initiated full-group protocol (lines 23/25).
    Handler(Report),
    /// Report within a FILTERRESET iteration's MAXIMUMPROTOCOL(n) (line 38).
    Reset(Report),
}

impl UpMsg {
    /// The carried report.
    pub fn report(&self) -> Report {
        match *self {
            UpMsg::ViolMin(r) | UpMsg::ViolMax(r) | UpMsg::Handler(r) | UpMsg::Reset(r) => r,
        }
    }
}

impl WireSize for UpMsg {
    fn wire_bits(&self) -> u32 {
        8 + self.report().wire_bits()
    }
}

/// Coordinator → nodes messages (all broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownMsg {
    /// Running minimum announcement of the violation-phase min-protocol.
    ViolMinAnnounce(Report),
    /// Running maximum announcement of the violation-phase max-protocol.
    ViolMaxAnnounce(Report),
    /// Start MINIMUMPROTOCOL(k) over *all* current top-k nodes (line 25).
    HandlerStartMin,
    /// Start MAXIMUMPROTOCOL(n−k) over *all* current non-top-k nodes
    /// (line 23).
    HandlerStartMax,
    /// Running extremum announcement of the handler protocol.
    HandlerAnnounce(Report),
    /// New common filter threshold `M` (line 33): top-k filters become
    /// `[M, ∞]`, the rest `[−∞, M]`; membership unchanged.
    Midpoint(Value),
    /// ε-band hit (approximate mode only, arXiv 1601.04448): the k/k+1
    /// boundary was crossed by at most ε, the coordinator re-centered the
    /// epoch on this boundary value instead of resetting, and every node
    /// adopts it as the new common filter threshold. Node-side semantics
    /// are identical to [`DownMsg::Midpoint`]; the distinct frame keeps
    /// the wire ledger and event replay lossless about which rule fired.
    Band(Value),
    /// Begin FILTERRESET (line 37): every node joins iteration 1 of
    /// MAXIMUMPROTOCOL(n).
    ResetStart,
    /// Winner of reset iteration `rank` (1-based). Doubles as the start
    /// signal of iteration `rank+1`; the named node stops participating and,
    /// if `rank ≤ k`, will be in the new top-k.
    ResetWinner { rank: u32, report: Report },
    /// Running maximum announcement within a legacy reset iteration.
    ResetAnnounce(Report),
    /// Batched reset only: the current `(k+1)`-th best report — the
    /// deactivation bar of the single k-select sweep. A participant that
    /// cannot beat it is provably outside the new top-`k+1` and withdraws.
    ResetBar(Report),
    /// End of FILTERRESET (line 41): new threshold `M`; each node's
    /// membership is "was announced with rank ≤ k during this reset".
    ResetDone { threshold: Value },
}

impl WireSize for DownMsg {
    fn wire_bits(&self) -> u32 {
        8 + match *self {
            DownMsg::ViolMinAnnounce(r)
            | DownMsg::ViolMaxAnnounce(r)
            | DownMsg::HandlerAnnounce(r)
            | DownMsg::ResetAnnounce(r)
            | DownMsg::ResetBar(r) => r.wire_bits(),
            DownMsg::HandlerStartMin | DownMsg::HandlerStartMax | DownMsg::ResetStart => 0,
            DownMsg::Midpoint(m) | DownMsg::Band(m) => varint_bits(m),
            DownMsg::ResetWinner { rank, report } => varint_bits(rank as u64) + report.wire_bits(),
            DownMsg::ResetDone { threshold } => varint_bits(threshold),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_net::id::NodeId;
    use topk_net::wire::budget_bits;

    #[test]
    fn all_messages_fit_size_budget() {
        let n = 1 << 20;
        let v: Value = (1 << 40) - 1;
        let r = Report {
            id: NodeId(n - 1),
            value: v,
        };
        let msgs_up = [
            UpMsg::ViolMin(r),
            UpMsg::ViolMax(r),
            UpMsg::Handler(r),
            UpMsg::Reset(r),
        ];
        let msgs_down = [
            DownMsg::ViolMinAnnounce(r),
            DownMsg::ViolMaxAnnounce(r),
            DownMsg::HandlerStartMin,
            DownMsg::HandlerStartMax,
            DownMsg::HandlerAnnounce(r),
            DownMsg::Midpoint(v),
            DownMsg::Band(v),
            DownMsg::ResetStart,
            DownMsg::ResetWinner {
                rank: n - 1,
                report: r,
            },
            DownMsg::ResetAnnounce(r),
            DownMsg::ResetBar(r),
            DownMsg::ResetDone { threshold: v },
        ];
        let budget = budget_bits(n as usize, v);
        for m in msgs_up {
            assert!(
                m.wire_bits() <= budget,
                "{m:?}: {} > {budget}",
                m.wire_bits()
            );
        }
        for m in msgs_down {
            assert!(
                m.wire_bits() <= budget,
                "{m:?}: {} > {budget}",
                m.wire_bits()
            );
        }
    }

    #[test]
    fn up_msg_report_accessor() {
        let r = Report {
            id: NodeId(3),
            value: 9,
        };
        assert_eq!(UpMsg::ViolMin(r).report(), r);
        assert_eq!(UpMsg::Reset(r).report(), r);
    }
}
