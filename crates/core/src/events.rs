//! Typed output events of a monitoring run — the push-based counterpart of
//! polling [`Monitor::topk`](crate::monitor::Monitor::topk).
//!
//! A [`crate::session::MonitorSession`] turns every committed time step into
//! a (usually empty) batch of [`TopkEvent`]s: membership changes
//! (`Entered` / `Left`), rank movements *within* the monitored set
//! (`RankChanged`), filter-threshold updates (`ThresholdUpdated`) and
//! completed `FILTERRESET` episodes (`ResetCompleted`). The contract is
//! **replayability**: feeding the event stream of any run — on any engine,
//! any reset strategy, any dense/sparse interleaving — into an
//! [`EventReplay`] reconstructs exactly the answer and threshold the session
//! would report when polled at every step. `tests/session_events.rs`
//! property-tests that contract across the full runtime × strategy matrix.
//!
//! Within one step's batch, events are emitted in a fixed order:
//! `ResetCompleted`, `ThresholdUpdated` / `ApproxBoundary`, then membership
//! events — every `Left` (ascending id), then every `Entered` (ascending
//! rank), then every `RankChanged` (ascending new rank). Replay does not
//! depend on the order; fixing it makes event streams directly comparable
//! across runs.

use topk_net::id::{NodeId, Value};

use crate::coordinator::CoordinatorMachine;

/// One typed output event of a monitoring session.
///
/// `rank` is 1-based by *value* among the monitored set: rank 1 is the
/// largest monitored value (ties broken by ascending node id). Every event
/// carries the time step `t` that produced it, so a drained batch remains
/// self-describing after the step advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopkEvent {
    /// `id` joined the monitored top-k set at `rank`.
    Entered { t: u64, id: NodeId, rank: usize },
    /// `id` left the monitored top-k set.
    Left { t: u64, id: NodeId },
    /// `id` stayed in the set but moved from rank `from` to rank `to`.
    RankChanged {
        t: u64,
        id: NodeId,
        from: usize,
        to: usize,
    },
    /// The shared filter threshold `M` changed to `threshold` (midpoint
    /// update or post-reset rebroadcast).
    ThresholdUpdated { t: u64, threshold: Value },
    /// ε-approximate mode only: the k/k+1 boundary was crossed within the
    /// ε-band and the coordinator re-centered the epoch on `threshold`
    /// (also the new common filter threshold) instead of resetting. Emitted
    /// *instead of* [`TopkEvent::ThresholdUpdated`] for that step, so
    /// replay stays lossless about which rule fired — and so consumers can
    /// tell exact-certified thresholds from ε-tolerant ones.
    ApproxBoundary { t: u64, threshold: Value },
    /// A `FILTERRESET` episode (including the `t = 0` initialization)
    /// completed within this step.
    ResetCompleted { t: u64 },
}

impl TopkEvent {
    /// The time step that produced this event.
    pub fn t(&self) -> u64 {
        match *self {
            TopkEvent::Entered { t, .. }
            | TopkEvent::Left { t, .. }
            | TopkEvent::RankChanged { t, .. }
            | TopkEvent::ThresholdUpdated { t, .. }
            | TopkEvent::ApproxBoundary { t, .. }
            | TopkEvent::ResetCompleted { t } => t,
        }
    }
}

/// Reconstructs session state from a [`TopkEvent`] stream — the consumer
/// side of the replayability contract (and the reference implementation the
/// session-layer tests check the live session against).
#[derive(Debug, Clone, Default)]
pub struct EventReplay {
    /// Monitored members ordered by rank (index 0 = rank 1).
    by_rank: Vec<NodeId>,
    threshold: Option<Value>,
    resets: u64,
    band_hits: u64,
    /// Scratch for applying one step's rank assignments.
    staged: Vec<(usize, NodeId)>,
}

impl EventReplay {
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one step's event batch (any subset of one step's events is
    /// *not* meaningful — always apply whole batches as drained).
    pub fn apply(&mut self, events: &[TopkEvent]) {
        // Departures first: surviving members' final ranks are relative to
        // the post-departure set.
        for e in events {
            if let TopkEvent::Left { id, .. } = e {
                let pos = self
                    .by_rank
                    .iter()
                    .position(|m| m == id)
                    .expect("Left for a non-member");
                self.by_rank.remove(pos);
            }
        }
        // Collect explicit final ranks (Entered + RankChanged). Members
        // without an event keep their previous rank — the emitter guarantees
        // every rank shift is announced, so the combination is total.
        self.staged.clear();
        for e in events {
            match *e {
                TopkEvent::Entered { id, rank, .. } => self.staged.push((rank, id)),
                TopkEvent::RankChanged { id, to, .. } => {
                    let pos = self
                        .by_rank
                        .iter()
                        .position(|m| m == &id)
                        .expect("RankChanged for a non-member");
                    self.by_rank.remove(pos);
                    self.staged.push((to, id));
                }
                TopkEvent::ThresholdUpdated { threshold, .. } => {
                    self.threshold = Some(threshold);
                }
                TopkEvent::ApproxBoundary { threshold, .. } => {
                    self.threshold = Some(threshold);
                    self.band_hits += 1;
                }
                TopkEvent::ResetCompleted { .. } => self.resets += 1,
                TopkEvent::Left { .. } => {}
            }
        }
        // Re-insert by ascending final rank; unmoved members keep relative
        // order, so inserting at `rank - 1` lands everyone correctly.
        self.staged.sort_unstable();
        for &(rank, id) in &self.staged {
            assert!(rank >= 1 && rank <= self.by_rank.len() + 1, "rank gap");
            self.by_rank.insert(rank - 1, id);
        }
    }

    /// Members ordered by rank (index 0 = rank 1 = largest value).
    pub fn by_rank(&self) -> &[NodeId] {
        &self.by_rank
    }

    /// The reconstructed answer in [`Monitor::topk`] form: member ids,
    /// sorted ascending.
    ///
    /// [`Monitor::topk`]: crate::monitor::Monitor::topk
    pub fn topk(&self) -> Vec<NodeId> {
        let mut ids = self.by_rank.clone();
        ids.sort_unstable();
        ids
    }

    /// The reconstructed filter threshold.
    pub fn threshold(&self) -> Option<Value> {
        self.threshold
    }

    /// Completed resets seen so far (including initialization).
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// ε-band boundary hits seen so far (always zero for exact-mode runs).
    pub fn band_hits(&self) -> u64 {
        self.band_hits
    }
}

/// Shared change-detector behind [`Monitor::drain_events`]: remembers the
/// last reported threshold / reset count and emits the protocol-level
/// events ([`TopkEvent::ResetCompleted`], [`TopkEvent::ThresholdUpdated`])
/// for whatever changed since. Both Algorithm 1 monitors embed one;
/// membership and rank events are derived by the session layer, which owns
/// the value row needed to rank members.
///
/// [`Monitor::drain_events`]: crate::monitor::Monitor::drain_events
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct EventCursor {
    threshold: Option<Value>,
    resets: u64,
    band_hits: u64,
}

impl EventCursor {
    /// Compare against the coordinator and append protocol events for step
    /// `t`. At most one reset completes per step, so a single
    /// `ResetCompleted` suffices.
    pub(crate) fn drain(&mut self, coord: &CoordinatorMachine, t: u64, out: &mut Vec<TopkEvent>) {
        // Completed resets = counted resets + the t = 0 initialization
        // (which sets the tracker but is excluded from `metrics.resets`).
        let resets = coord.metrics().resets + coord.tracker().is_some() as u64;
        if resets != self.resets {
            debug_assert_eq!(resets, self.resets + 1, "one reset max per step");
            out.push(TopkEvent::ResetCompleted { t });
            self.resets = resets;
        }
        let threshold = coord.current_threshold();
        let band_hits = coord.metrics().band_hits;
        if band_hits != self.band_hits {
            // ε-band step: exactly one conclusion per step, so a band hit
            // excludes both a reset and a plain midpoint update. Always
            // emitted — even when the re-centered boundary happens to equal
            // the previous threshold — so replay knows which rule fired.
            debug_assert_eq!(band_hits, self.band_hits + 1, "one band hit max per step");
            let th = threshold.expect("a band hit always sets a threshold");
            out.push(TopkEvent::ApproxBoundary { t, threshold: th });
            self.band_hits = band_hits;
            self.threshold = threshold;
        } else if threshold != self.threshold {
            let th = threshold.expect("threshold never reverts to None");
            out.push(TopkEvent::ThresholdUpdated { t, threshold: th });
            self.threshold = threshold;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_applies_membership_and_ranks() {
        let mut r = EventReplay::new();
        r.apply(&[
            TopkEvent::ResetCompleted { t: 0 },
            TopkEvent::ThresholdUpdated {
                t: 0,
                threshold: 50,
            },
            TopkEvent::Entered {
                t: 0,
                id: NodeId(3),
                rank: 1,
            },
            TopkEvent::Entered {
                t: 0,
                id: NodeId(1),
                rank: 2,
            },
        ]);
        assert_eq!(r.by_rank(), &[NodeId(3), NodeId(1)]);
        assert_eq!(r.topk(), vec![NodeId(1), NodeId(3)]);
        assert_eq!(r.threshold(), Some(50));
        assert_eq!(r.resets(), 1);

        // n1 overtakes n3; n3 drops out for n7.
        r.apply(&[
            TopkEvent::Left {
                t: 1,
                id: NodeId(3),
            },
            TopkEvent::Entered {
                t: 1,
                id: NodeId(7),
                rank: 2,
            },
            TopkEvent::RankChanged {
                t: 1,
                id: NodeId(1),
                from: 2,
                to: 1,
            },
        ]);
        assert_eq!(r.by_rank(), &[NodeId(1), NodeId(7)]);
        assert_eq!(r.topk(), vec![NodeId(1), NodeId(7)]);
    }

    #[test]
    fn replay_counts_band_hits_and_tracks_their_threshold() {
        let mut r = EventReplay::new();
        r.apply(&[
            TopkEvent::ResetCompleted { t: 0 },
            TopkEvent::ThresholdUpdated {
                t: 0,
                threshold: 50,
            },
        ]);
        assert_eq!(r.band_hits(), 0);
        r.apply(&[TopkEvent::ApproxBoundary {
            t: 3,
            threshold: 47,
        }]);
        assert_eq!(r.band_hits(), 1);
        assert_eq!(r.threshold(), Some(47), "band hits move the threshold");
        assert_eq!(r.resets(), 1, "band hits are not resets");
    }

    #[test]
    fn event_t_accessor() {
        assert_eq!(TopkEvent::ResetCompleted { t: 9 }.t(), 9);
        assert_eq!(
            TopkEvent::Left {
                t: 4,
                id: NodeId(0)
            }
            .t(),
            4
        );
    }
}
