//! [`SocketTopkMonitor`] — Algorithm 1 assembled on the *socket* runtime:
//! node shards behind loopback-TCP connections, every message a
//! length-prefixed [`crate::codec`] frame, the coordinator driven from the
//! caller's thread.
//!
//! Same [`Monitor`] contract as [`TopkMonitor`], same ledgers, same answers
//! — the three engines are bit-identical for equal `(cfg, seed)` and inputs
//! (pinned by `tests/runtime_conformance.rs`). What this engine adds is the
//! *physical* side of the cost model: a [`WireMetrics`] ledger of frames and
//! bytes actually written to the sockets, mirrored into
//! [`RunMetrics::wire`] at every step, with the `FireCalendar` skip rule and
//! `RoundScope` narrowing measurable as bytes never written.

use topk_net::behavior::CoordinatorBehavior;
use topk_net::chaos::{ChaosPolicy, RecoveryMetrics, RuntimeError};
use topk_net::id::{NodeId, Value};
use topk_net::ledger::{LedgerSnapshot, WireMetrics};
use topk_net::socket::{SocketCluster, WireTaps};

use crate::config::MonitorConfig;
use crate::coordinator::CoordinatorMachine;
use crate::events::{EventCursor, TopkEvent};
use crate::metrics::RunMetrics;
use crate::monitor::{Monitor, TopkMonitor};
use crate::node::NodeMachine;

/// Algorithm 1 on the socket runtime — a [`Monitor`] whose nodes live in
/// shard threads behind real loopback-TCP connections.
///
/// This is the *engine* type; new code should usually build a
/// [`crate::session::MonitorSession`] with
/// [`Engine::Socket`](crate::session::Engine) instead of constructing it
/// directly.
pub struct SocketTopkMonitor {
    cluster: SocketCluster<NodeMachine>,
    coord: CoordinatorMachine,
    cfg: MonitorConfig,
    events: EventCursor,
}

impl SocketTopkMonitor {
    /// Spawn the shard threads and connect them over loopback TCP (port 0).
    /// Seeds and behaviors match [`TopkMonitor::new`] exactly, so the two
    /// monitors are interchangeable twins.
    pub fn new(cfg: MonitorConfig, seed: u64) -> Self {
        let (nodes, coord) = TopkMonitor::make_parts(cfg, seed);
        SocketTopkMonitor {
            cluster: SocketCluster::spawn(nodes),
            coord,
            cfg,
            events: EventCursor::default(),
        }
    }

    /// [`SocketTopkMonitor::new`] with per-connection byte capture armed —
    /// [`SocketTopkMonitor::capture`] then exposes the exact wire bytes for
    /// golden-frame snapshot tests.
    pub fn new_captured(cfg: MonitorConfig, seed: u64) -> Self {
        let (nodes, coord) = TopkMonitor::make_parts(cfg, seed);
        SocketTopkMonitor {
            cluster: SocketCluster::spawn_captured(nodes),
            coord,
            cfg,
            events: EventCursor::default(),
        }
    }

    /// [`SocketTopkMonitor::new`] behind a chaos-injecting transport: the
    /// same monitor, but every frame crosses a seeded fault layer — the
    /// in-process classes of [`ChaosPolicy`] (drops, duplicates, delays,
    /// stalls, coordinator crash-and-restart) *plus* the wire classes of
    /// [`topk_net::WireChaos`] (torn frames, connection resets, half-open
    /// connections, reconnect storms). Every *committed* step produces
    /// answers, thresholds and events identical to the fault-free twin
    /// (pinned by the socket chaos arms of `tests/runtime_conformance.rs`);
    /// only the recovery counters and the retransmit channels record that
    /// faults happened.
    pub fn new_chaotic(cfg: MonitorConfig, seed: u64, policy: ChaosPolicy) -> Self {
        let (nodes, coord) = TopkMonitor::make_parts(cfg, seed);
        SocketTopkMonitor {
            cluster: SocketCluster::spawn_chaotic(nodes, policy),
            coord,
            cfg,
            events: EventCursor::default(),
        }
    }

    /// The coordinator (tracker/threshold accessors for tests and tools).
    pub fn coordinator(&self) -> &CoordinatorMachine {
        &self.coord
    }

    /// Fault-injection and recovery counters (all zero without a
    /// [`ChaosPolicy`]). The same block is mirrored into
    /// [`RunMetrics::recovery`] at each committed step.
    pub fn recovery(&self) -> &RecoveryMetrics {
        self.cluster.recovery()
    }

    /// Fallible form of [`Monitor::step`]: a dead shard or a hung reply
    /// surfaces as a typed [`RuntimeError`] instead of a panic.
    pub fn try_step(&mut self, t: u64, values: &[Value]) -> Result<(), RuntimeError> {
        self.cluster.try_step(&mut self.coord, t, values)
    }

    /// Fallible form of [`Monitor::step_sparse`].
    pub fn try_step_sparse(
        &mut self,
        t: u64,
        changes: &[(NodeId, Value)],
    ) -> Result<(), RuntimeError> {
        self.cluster.try_step_sparse(&mut self.coord, t, changes)
    }

    /// Phase-attributed event counters of the coordinator — same accessor
    /// surface as [`TopkMonitor::metrics`], with [`RunMetrics::wire`]
    /// carrying this engine's physical wire ledger.
    pub fn metrics(&self) -> &RunMetrics {
        self.coord.metrics()
    }

    /// The physical wire ledger: frames and bytes actually written to the
    /// sockets so far, per model channel plus totals.
    pub fn wire(&self) -> &WireMetrics {
        self.cluster.wire()
    }

    /// Per-connection byte captures (only on a monitor built with
    /// [`SocketTopkMonitor::new_captured`]); handles stay valid across
    /// [`SocketTopkMonitor::shutdown`].
    pub fn capture(&self) -> Option<WireTaps> {
        self.cluster.capture()
    }

    /// Number of shard connections carrying the cluster's nodes.
    pub fn shards(&self) -> usize {
        self.cluster.shards()
    }

    /// Coordinator micro-rounds executed so far (all phases) — counted by
    /// the socket driver identically to [`TopkMonitor::micro_rounds_run`].
    pub fn micro_rounds_run(&self) -> u64 {
        self.cluster.micro_rounds_run()
    }

    /// Steps that exchanged no message and ran no micro-round.
    pub fn silent_steps(&self) -> u64 {
        self.cluster.silent_steps()
    }

    /// Transport-level synchronization frames sent so far (excluded from
    /// model cost). Charged at dispatch intent, exactly like the threaded
    /// runtime — so this count is bit-identical to the threaded twin even
    /// though here every frame is real bytes.
    pub fn sync_frames(&self) -> u64 {
        self.cluster.ledger().sync_frames()
    }

    /// The configuration this monitor runs.
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    /// Shut down the shard threads and return the final node state machines
    /// (for state-equality assertions against a sequential twin).
    pub fn shutdown(self) -> Vec<NodeMachine> {
        self.cluster.shutdown()
    }
}

impl Monitor for SocketTopkMonitor {
    fn name(&self) -> &'static str {
        "topk-filter-socket"
    }

    fn step(&mut self, t: u64, values: &[Value]) {
        self.cluster.step(&mut self.coord, t, values);
    }

    fn step_sparse(&mut self, t: u64, changes: &[(NodeId, Value)]) {
        self.cluster.step_sparse(&mut self.coord, t, changes);
    }

    fn topk(&self) -> Vec<NodeId> {
        self.coord.topk().to_vec()
    }

    fn ledger(&self) -> LedgerSnapshot {
        self.cluster.ledger().snapshot()
    }

    fn n(&self) -> usize {
        self.cfg.n
    }

    fn k(&self) -> usize {
        self.cfg.k
    }

    fn drain_events(&mut self, t: u64, out: &mut Vec<TopkEvent>) {
        self.events.drain(&self.coord, t, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_net::id::true_topk;

    #[test]
    fn socket_monitor_matches_sequential_twin() {
        let cfg = MonitorConfig::new(8, 3);
        let mut soc = SocketTopkMonitor::new(cfg, 42);
        let mut seq = TopkMonitor::new(cfg, 42);
        let rows: Vec<Vec<u64>> = vec![
            vec![5, 80, 20, 70, 10, 60, 30, 40],
            vec![5, 80, 20, 70, 10, 60, 30, 40],
            vec![90, 80, 20, 70, 10, 60, 30, 40],
        ];
        for (t, row) in rows.iter().enumerate() {
            soc.step(t as u64, row);
            seq.step(t as u64, row);
            assert_eq!(soc.topk(), seq.topk());
        }
        assert_eq!(soc.topk(), true_topk(rows.last().unwrap(), 3));
        let (a, b) = (soc.ledger(), seq.ledger());
        assert_eq!((a.up, a.down, a.broadcast), (b.up, b.down, b.broadcast));
        assert_eq!(a.total_bits(), b.total_bits());
        // Model counters match the twin exactly; only the wire block
        // records that bytes moved.
        let scrubbed = RunMetrics {
            wire: Default::default(),
            ..*soc.metrics()
        };
        assert_eq!(scrubbed, *seq.metrics());
        assert!(soc.metrics().wire.bytes_total > 0, "bytes crossed sockets");
        assert_eq!(soc.metrics().wire, *soc.wire());
    }

    #[test]
    fn constant_rows_write_no_bytes_after_init() {
        let cfg = MonitorConfig::new(64, 4);
        let mut soc = SocketTopkMonitor::new(cfg, 7);
        let row: Vec<u64> = (1..=64).map(|v| v * 100).collect();
        soc.step(0, &row);
        let after_init = soc.wire().bytes_total;
        for t in 1..50 {
            soc.step(t, &row);
        }
        assert_eq!(
            soc.wire().bytes_total,
            after_init,
            "constant rows must write zero bytes after init"
        );
        assert_eq!(soc.silent_steps(), 49);
    }
}
