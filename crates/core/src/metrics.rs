//! Event counters of one Algorithm 1 run, split by protocol phase.
//!
//! The coordinator counts every up-message it receives and every broadcast
//! it emits, attributed to the phase that caused it; tests assert the sums
//! equal the runtime ledger exactly (so the breakdown is complete, not
//! approximate). These counters feed experiment E12 (violations-per-epoch
//! vs the `log Δ` bound) and the message-breakdown tables.

use serde::{Deserialize, Serialize};
use topk_net::chaos::RecoveryMetrics;
use topk_net::ledger::WireMetrics;

/// Phase-attributed message and event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Time steps processed.
    pub steps: u64,
    /// Steps in which at least one violation report arrived.
    pub violation_steps: u64,
    /// Up-messages from violation-phase protocols (lines 5/7).
    pub viol_up: u64,
    /// Broadcast announcements of the violation-phase protocols.
    pub viol_bcast: u64,
    /// `FILTERVIOLATIONHANDLER` invocations.
    pub handler_calls: u64,
    /// Extra full-group protocols the handler ran (lines 23/25).
    pub handler_protocols: u64,
    /// Up-messages of those handler protocols.
    pub handler_up: u64,
    /// Broadcasts of those handler protocols (start + announcements).
    pub handler_bcast: u64,
    /// Successful midpoint updates (line 33).
    pub midpoint_updates: u64,
    /// Midpoint threshold broadcasts (== midpoint_updates).
    pub midpoint_bcast: u64,
    /// `FILTERRESET` executions, excluding the `t = 0` initialization.
    pub resets: u64,
    /// Up-messages inside resets (including initialization).
    pub reset_up: u64,
    /// Broadcasts inside resets: start, per-round announcements, winner
    /// announcements, final threshold (including initialization).
    pub reset_bcast: u64,
    /// Coordinator micro-rounds spent inside resets (including the round
    /// that broadcasts `ResetStart` and the `t = 0` initialization). This is
    /// the FILTERRESET *round* complexity — `(k+1)·(⌈log₂n⌉+1) + 1` per
    /// legacy reset, `⌈log₂(n/(k+1))⌉ + k + 3` per batched reset — counted
    /// identically on every runtime (it lives in the coordinator, not the
    /// driver) and pinned by `crates/core/tests/reset_rounds.rs`.
    pub reset_rounds: u64,
    /// ε-band hits (approximate mode only): boundary crossings the
    /// coordinator absorbed by re-centering the epoch instead of running
    /// `FILTERRESET`. Each hit is exactly one avoided reset — the
    /// competitive-ratio accounting of the follow-up paper
    /// (arXiv 1601.04448): an exact twin on the same trace pays
    /// `Θ(reset)` messages wherever this counter pays one broadcast.
    /// Always zero in exact mode and at `ε = 0`.
    pub band_hits: u64,
    /// Band threshold broadcasts (== band_hits: every hit announces the
    /// re-centered boundary once, scoped like a midpoint update).
    pub band_bcast: u64,
    /// Transport fault-injection and recovery counters (all zero except on
    /// a chaos-enabled threaded runtime). Not part of the model cost and
    /// excluded from the phase totals; the committed protocol counters
    /// above stay comparable to a fault-free twin by zeroing this block
    /// (`RunMetrics { recovery: Default::default(), ..m }`).
    pub recovery: RecoveryMetrics,
    /// Physical wire ledger (all zero except on the socket runtime):
    /// frames and bytes actually written to the transport, per model
    /// channel plus totals. Like [`RunMetrics::recovery`] this describes
    /// the execution substrate, not the model cost — it is excluded from
    /// the snapshot codec and from the phase totals, and comparisons
    /// against an in-process twin zero it the same way
    /// (`RunMetrics { wire: Default::default(), ..m }`).
    pub wire: WireMetrics,
}

impl RunMetrics {
    /// Counter-wise accumulate `other` into `self`, including the embedded
    /// [`RecoveryMetrics`] and [`WireMetrics`] blocks — the aggregation
    /// step of the sharded serving layer: `topk-serve` folds its S shards'
    /// metrics into one service-level block with S calls. Every field is a
    /// pure sum, so `steps` becomes shard-steps (S × the wall-clock step
    /// count when every shard advances in lockstep); divide by the shard
    /// count for per-shard averages.
    pub fn absorb(&mut self, other: &RunMetrics) {
        self.steps += other.steps;
        self.violation_steps += other.violation_steps;
        self.viol_up += other.viol_up;
        self.viol_bcast += other.viol_bcast;
        self.handler_calls += other.handler_calls;
        self.handler_protocols += other.handler_protocols;
        self.handler_up += other.handler_up;
        self.handler_bcast += other.handler_bcast;
        self.midpoint_updates += other.midpoint_updates;
        self.midpoint_bcast += other.midpoint_bcast;
        self.resets += other.resets;
        self.reset_up += other.reset_up;
        self.reset_bcast += other.reset_bcast;
        self.reset_rounds += other.reset_rounds;
        self.band_hits += other.band_hits;
        self.band_bcast += other.band_bcast;
        self.recovery.absorb(&other.recovery);
        self.wire.absorb(&other.wire);
    }

    /// Total up-messages attributed across phases.
    pub fn total_up(&self) -> u64 {
        self.viol_up + self.handler_up + self.reset_up
    }

    /// Total broadcasts attributed across phases.
    pub fn total_bcast(&self) -> u64 {
        self.viol_bcast
            + self.handler_bcast
            + self.midpoint_bcast
            + self.band_bcast
            + self.reset_bcast
    }

    /// Resets the ε-band avoided: every band hit is a certified boundary
    /// crossing that this configuration answered with one broadcast where
    /// the exact rule fires `FILTERRESET` — the numerator side of the
    /// competitive comparison against an exact twin on the same trace.
    pub fn avoided_resets(&self) -> u64 {
        self.band_hits
    }

    /// Total model messages (Algorithm 1 sends no unicasts).
    pub fn total(&self) -> u64 {
        self.total_up() + self.total_bcast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_phases() {
        let m = RunMetrics {
            viol_up: 3,
            handler_up: 2,
            reset_up: 5,
            viol_bcast: 1,
            handler_bcast: 2,
            midpoint_bcast: 4,
            reset_bcast: 8,
            ..Default::default()
        };
        assert_eq!(m.total_up(), 10);
        assert_eq!(m.total_bcast(), 15);
        assert_eq!(m.total(), 25);
    }
}
