//! Multi-resolution monitoring: several `k` values over one observation
//! stream.
//!
//! Operations dashboards commonly want the top-1, top-5 and top-20
//! simultaneously. [`MultiKMonitor`] runs one Algorithm 1 instance per
//! requested `k` against the same observations and exposes the nested family
//! of answers. Each instance keeps the paper's per-`k` competitive guarantee;
//! the total cost is the sum (the instances cannot share filters soundly —
//! a node may be inside its top-20 filter while violating its top-5 filter —
//! so a *nested*-filter algorithm is genuine future work; see DESIGN.md).
//!
//! The wrapper deduplicates nothing across instances by design: measuring
//! exactly how much a smarter shared-filter scheme could save is what
//! [`MultiKMonitor::cost_by_k`] is for.

use topk_net::id::{NodeId, Value};
use topk_net::ledger::LedgerSnapshot;

use crate::config::MonitorConfig;
use crate::monitor::{Monitor, TopkMonitor};

/// Monitors a sorted family of `k` values over one stream.
pub struct MultiKMonitor {
    ks: Vec<usize>,
    monitors: Vec<TopkMonitor>,
}

impl MultiKMonitor {
    /// `ks` must be non-empty, strictly increasing, each in `1..=n`.
    pub fn new(n: usize, ks: &[usize], seed: u64) -> Self {
        assert!(!ks.is_empty(), "need at least one k");
        assert!(
            ks.windows(2).all(|w| w[0] < w[1]),
            "ks must be strictly increasing"
        );
        let monitors = ks
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                TopkMonitor::new(
                    MonitorConfig::new(n, k),
                    // Independent randomness per instance.
                    topk_net::rng::derive_seed(seed, i as u64),
                )
            })
            .collect();
        MultiKMonitor {
            ks: ks.to_vec(),
            monitors,
        }
    }

    /// Advance all instances by one step.
    pub fn step(&mut self, t: u64, values: &[Value]) {
        for mon in &mut self.monitors {
            mon.step(t, values);
        }
    }

    /// The monitored `k` values.
    pub fn ks(&self) -> &[usize] {
        &self.ks
    }

    /// The top-`k` answer for the given `k` (must be one of [`Self::ks`]).
    pub fn topk(&self, k: usize) -> Vec<NodeId> {
        let i = self
            .ks
            .iter()
            .position(|&x| x == k)
            .unwrap_or_else(|| panic!("k={k} is not monitored (ks={:?})", self.ks));
        self.monitors[i].topk()
    }

    /// All answers, smallest `k` first. The family is always *nested* when
    /// boundaries are strict (top-k₁ ⊆ top-k₂ for k₁ < k₂); boundary ties
    /// may legitimately differ between instances.
    pub fn all_topk(&self) -> Vec<(usize, Vec<NodeId>)> {
        self.ks
            .iter()
            .zip(&self.monitors)
            .map(|(&k, m)| (k, m.topk()))
            .collect()
    }

    /// Total messages across all instances.
    pub fn total_messages(&self) -> u64 {
        self.monitors.iter().map(|m| m.ledger().total()).sum()
    }

    /// Per-`k` message breakdown — the upper bound a shared-filter scheme
    /// would have to beat.
    pub fn cost_by_k(&self) -> Vec<(usize, LedgerSnapshot)> {
        self.ks
            .iter()
            .zip(&self.monitors)
            .map(|(&k, m)| (k, m.ledger()))
            .collect()
    }

    /// Access an individual instance (metrics, auditing).
    pub fn instance(&self, k: usize) -> &TopkMonitor {
        let i = self.ks.iter().position(|&x| x == k).expect("monitored k");
        &self.monitors[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_valid_topk;
    use topk_streams::WorkloadSpec;

    #[test]
    fn all_resolutions_stay_valid_and_nested() {
        let n = 12;
        let ks = [1usize, 3, 8];
        let spec = WorkloadSpec::RandomWalk {
            n,
            lo: 0,
            hi: 100_000,
            step_max: 3_000,
            lazy_p: 0.2,
        };
        let trace = spec.record(5, 250);
        let mut multi = MultiKMonitor::new(n, &ks, 7);
        for t in 0..trace.steps() {
            let row = trace.step(t);
            multi.step(t as u64, row);
            let answers = multi.all_topk();
            for (k, set) in &answers {
                assert_eq!(set.len(), *k);
                assert!(is_valid_topk(row, set), "k={k} at t={t}");
            }
            // Nesting under strict boundaries.
            let mut sorted: Vec<u64> = row.to_vec();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            for w in answers.windows(2) {
                let (k1, s1) = &w[0];
                let (_k2, s2) = &w[1];
                if sorted[*k1 - 1] > sorted[*k1] {
                    assert!(
                        s1.iter().all(|id| s2.contains(id)),
                        "top-{k1} ⊄ larger set at t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn cost_is_sum_of_instances() {
        let mut multi = MultiKMonitor::new(6, &[1, 3], 1);
        multi.step(0, &[10, 60, 30, 50, 20, 40]);
        multi.step(1, &[500, 60, 30, 50, 20, 40]);
        let by_k = multi.cost_by_k();
        let sum: u64 = by_k.iter().map(|(_, l)| l.total()).sum();
        assert_eq!(sum, multi.total_messages());
        assert!(sum > 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_ks() {
        let _ = MultiKMonitor::new(5, &[3, 1], 0);
    }

    #[test]
    #[should_panic(expected = "not monitored")]
    fn rejects_unknown_k_query() {
        let multi = MultiKMonitor::new(5, &[2], 0);
        let _ = multi.topk(3);
    }
}
