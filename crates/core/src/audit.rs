//! Deep invariant auditing of a running Algorithm 1 instance.
//!
//! [`audit_monitor`] cross-checks everything the distributed pieces believe
//! against each other and against ground truth after a step:
//!
//! 1. coordinator answer = a valid top-k for the true values (and the unique
//!    one when the boundary is strict);
//! 2. every node's membership flag agrees with the coordinator's set;
//! 3. every initialized node holds the same threshold `M`, equal to the
//!    coordinator's;
//! 4. the implied assignment is a valid *set of filters* in the Lemma 2.2
//!    sense (via `topk-filters`), except on nodes whose value currently
//!    violates — which must be impossible *between* steps (violations are
//!    resolved within the step that observes them);
//! 5. the coordinator's `T+/T−` certificate brackets the true boundary
//!    values: `T+ ≤ min top-k value` may fail only through staleness in the
//!    *downward* direction, so we check the certified order `T+ ≥ M ≥ T−`.
//!
//! The auditor is test/tool infrastructure: it reads both sides through
//! their public inspection APIs and never participates in the protocol.

use topk_filters::FilterSet;
use topk_net::behavior::NodeBehavior as _;
use topk_net::id::{true_topk, NodeId, Value};

use crate::monitor::{is_valid_topk, Monitor as _, TopkMonitor};

/// A failed audit, with enough context to debug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    InvalidTopk {
        got: Vec<NodeId>,
    },
    NotUniqueAnswer {
        got: Vec<NodeId>,
        expected: Vec<NodeId>,
    },
    MembershipMismatch {
        node: NodeId,
        node_believes: bool,
        coordinator_believes: bool,
    },
    ThresholdMismatch {
        node: NodeId,
        node_threshold: Option<Value>,
        coordinator_threshold: Option<Value>,
    },
    InvalidFilterSet,
    CertificateOrder {
        t_plus: Value,
        t_minus: Value,
        threshold: Value,
    },
    NodeStillViolating {
        node: NodeId,
        value: Value,
        threshold: Value,
        in_topk: bool,
    },
}

/// Audit `mon` against the observations `values` of the step that just
/// completed. Returns all violations found (empty = healthy).
pub fn audit_monitor(mon: &TopkMonitor, values: &[Value]) -> Vec<AuditError> {
    let mut errors = Vec::new();
    let cfg = *mon.config();
    let answer = mon.topk();

    // (1) answer validity / uniqueness.
    if !is_valid_topk(values, &answer) {
        errors.push(AuditError::InvalidTopk {
            got: answer.clone(),
        });
    } else if cfg.k < cfg.n {
        let mut sorted: Vec<Value> = values.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        if sorted[cfg.k - 1] > sorted[cfg.k] {
            let expected = true_topk(values, cfg.k);
            if answer != expected {
                errors.push(AuditError::NotUniqueAnswer {
                    got: answer.clone(),
                    expected,
                });
            }
        }
    }

    if cfg.is_degenerate() {
        return errors;
    }

    let coord_threshold = mon.coordinator().current_threshold();
    let mut member = vec![false; cfg.n];
    for id in &answer {
        member[id.idx()] = true;
    }

    for node in mon.nodes() {
        let id = node.id();
        // (2) membership agreement (only meaningful once initialized).
        if node.threshold().is_some() && node.in_topk() != member[id.idx()] {
            errors.push(AuditError::MembershipMismatch {
                node: id,
                node_believes: node.in_topk(),
                coordinator_believes: member[id.idx()],
            });
        }
        // (3) shared threshold.
        if node.threshold() != coord_threshold {
            errors.push(AuditError::ThresholdMismatch {
                node: id,
                node_threshold: node.threshold(),
                coordinator_threshold: coord_threshold,
            });
        }
        // (5-post) no unresolved violations between steps.
        if let Some(m) = node.threshold() {
            let v = values[id.idx()];
            let violating = if node.in_topk() { v < m } else { v > m };
            if violating {
                errors.push(AuditError::NodeStillViolating {
                    node: id,
                    value: v,
                    threshold: m,
                    in_topk: node.in_topk(),
                });
            }
        }
    }

    // (4) Lemma 2.2 validity of the implied threshold assignment — checked
    // against the monitor's own (valid, per check 1) membership: on exact
    // boundary ties several top-k sets are valid and the monitor may
    // legitimately hold one that differs from `true_topk`'s tie-break.
    if let Some(m) = coord_threshold {
        let fs = FilterSet::threshold(cfg.n, cfg.k, m, &answer);
        if !fs.is_valid_for_assignment(values, &answer) {
            errors.push(AuditError::InvalidFilterSet);
        }
        // (5) certificate order.
        if let Some(tr) = mon.coordinator().tracker() {
            if !(tr.t_plus() >= m && m >= tr.t_minus()) {
                errors.push(AuditError::CertificateOrder {
                    t_plus: tr.t_plus(),
                    t_minus: tr.t_minus(),
                    threshold: m,
                });
            }
        }
    }

    errors
}

/// Panic with a readable report if any audit error is present.
pub fn assert_audit_clean(mon: &TopkMonitor, values: &[Value], context: &str) {
    let errors = audit_monitor(mon, values);
    assert!(
        errors.is_empty(),
        "audit failed ({context}): {errors:#?}\nvalues: {values:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MonitorConfig, TopkMonitor};

    #[test]
    fn healthy_monitor_audits_clean() {
        let mut mon = TopkMonitor::new(MonitorConfig::new(6, 2), 3);
        let rows = [
            vec![10u64, 60, 30, 50, 20, 40],
            vec![12, 58, 33, 52, 18, 41],
            vec![500, 58, 33, 52, 18, 41],
        ];
        for (t, row) in rows.iter().enumerate() {
            mon.step(t as u64, row);
            assert_audit_clean(&mon, row, "healthy run");
        }
    }

    #[test]
    fn degenerate_configs_audit_clean() {
        let mut mon = TopkMonitor::new(MonitorConfig::new(3, 3), 1);
        mon.step(0, &[5, 2, 9]);
        assert_audit_clean(&mon, &[5, 2, 9], "k=n");
    }

    #[test]
    fn audit_detects_wrong_values() {
        // Feed the auditor *different* values than the monitor saw: it must
        // (correctly) flag the stale answer — proving the audit has teeth.
        let mut mon = TopkMonitor::new(MonitorConfig::new(4, 1), 2);
        mon.step(0, &[100, 10, 20, 30]);
        let lies = vec![1u64, 999, 20, 30];
        let errors = audit_monitor(&mon, &lies);
        assert!(!errors.is_empty(), "auditor must flag inconsistent state");
    }
}
