//! Heavy randomized correctness tests for Algorithm 1: the coordinator's
//! answer must be a valid top-k at *every* step, for arbitrary workloads,
//! seeds, and configuration knobs; the phase-attributed metrics must account
//! for every ledger entry; and the structural bounds of the §3 analysis
//! (epoch halving, handler accounting) must hold.

use topk_core::{is_valid_topk, HandlerMode, Monitor, MonitorConfig, TopkMonitor};
use topk_net::id::true_topk;
use topk_net::rng::log2_ceil;
use topk_proto::extremum::BroadcastPolicy;
use topk_streams::WorkloadSpec;

/// Drive one monitor over a recorded workload, checking validity at every
/// step; returns the monitor for further assertions.
fn drive(cfg: MonitorConfig, spec: &WorkloadSpec, seed: u64, steps: usize) -> TopkMonitor {
    let trace = spec.record(seed, steps);
    let mut mon = TopkMonitor::new(cfg, seed ^ 0xdead_beef);
    for t in 0..steps {
        let row = trace.step(t);
        mon.step(t as u64, row);
        let got = mon.topk();
        assert!(
            is_valid_topk(row, &got),
            "invalid top-{} at t={t} (n={}, seed={seed}, {}): got {:?} for {row:?}",
            cfg.k,
            cfg.n,
            spec.name(),
            got
        );
        // When the boundary is strict, the answer is unique.
        let mut sorted: Vec<u64> = row.to_vec();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        if cfg.k < cfg.n && sorted[cfg.k - 1] > sorted[cfg.k] {
            assert_eq!(
                got,
                true_topk(row, cfg.k),
                "strict boundary must give the unique answer (t={t}, seed={seed})"
            );
        }
    }
    // Metrics account for the entire ledger (no unattributed messages).
    let ledger = mon.ledger();
    let m = mon.metrics();
    assert_eq!(ledger.down, 0, "Algorithm 1 never unicasts");
    assert_eq!(m.total_up(), ledger.up, "up breakdown complete");
    assert_eq!(
        m.total_bcast(),
        ledger.broadcast,
        "bcast breakdown complete"
    );
    mon
}

#[test]
fn random_walk_matrix() {
    for &(n, k) in &[(4usize, 1usize), (8, 3), (16, 1), (16, 8), (32, 5), (9, 8)] {
        for seed in 0..3u64 {
            let spec = WorkloadSpec::RandomWalk {
                n,
                lo: 0,
                hi: 10_000,
                step_max: 200,
                lazy_p: 0.2,
            };
            drive(MonitorConfig::new(n, k), &spec, seed, 300);
        }
    }
}

#[test]
fn iid_uniform_chaos() {
    // Worst case for filters: everything moves wildly every step.
    for &(n, k) in &[(6usize, 2usize), (12, 4)] {
        for seed in 0..3u64 {
            let spec = WorkloadSpec::IidUniform { n, lo: 0, hi: 500 };
            drive(MonitorConfig::new(n, k), &spec, seed, 200);
        }
    }
}

#[test]
fn boundary_cross_adversary() {
    for seed in 0..3u64 {
        let spec = WorkloadSpec::BoundaryCross {
            n: 10,
            base: 1000,
            spread: 100,
            amplitude: 50,
            period: 8,
        };
        // k = 9: boundary sits exactly between the oscillating pair.
        drive(MonitorConfig::new(10, 9), &spec, seed, 400);
    }
}

#[test]
fn rotating_max_worst_case() {
    for seed in 0..2u64 {
        let spec = WorkloadSpec::RotatingMax {
            n: 8,
            base: 100,
            bonus: 1000,
        };
        drive(MonitorConfig::new(8, 1), &spec, seed, 100);
        drive(MonitorConfig::new(8, 3), &spec, seed, 100);
    }
}

#[test]
fn sensor_field_realistic() {
    let spec = WorkloadSpec::SensorField { n: 24 };
    drive(MonitorConfig::new(24, 4), &spec, 5, 500);
}

#[test]
fn zipf_jumps_heavy_tail() {
    let spec = WorkloadSpec::ZipfJumps {
        n: 12,
        lo: 0,
        hi: 100_000,
        max_jump: 20_000,
        s: 1.2,
    };
    drive(MonitorConfig::new(12, 3), &spec, 2, 300);
}

#[test]
fn all_knob_combinations_agree_on_answers() {
    let spec = WorkloadSpec::RandomWalk {
        n: 10,
        lo: 0,
        hi: 5000,
        step_max: 300,
        lazy_p: 0.1,
    };
    for policy in [BroadcastPolicy::OnChange, BroadcastPolicy::EveryRound] {
        for mode in [HandlerMode::Tight, HandlerMode::Faithful] {
            let cfg = MonitorConfig::new(10, 4)
                .with_policy(policy)
                .with_handler_mode(mode);
            drive(cfg, &spec, 77, 250);
        }
    }
}

#[test]
fn faithful_mode_never_cheaper_than_tight() {
    let spec = WorkloadSpec::RandomWalk {
        n: 16,
        lo: 0,
        hi: 4000,
        step_max: 250,
        lazy_p: 0.1,
    };
    let tight = drive(
        MonitorConfig::new(16, 4).with_handler_mode(HandlerMode::Tight),
        &spec,
        3,
        400,
    );
    let faithful = drive(
        MonitorConfig::new(16, 4).with_handler_mode(HandlerMode::Faithful),
        &spec,
        3,
        400,
    );
    // Identical inputs and identical node RNG streams up to the first
    // divergence; Faithful only ever *adds* protocol runs, so its total
    // cannot be smaller on this workload (checked empirically; the runs
    // diverge after the first both-sides violation).
    assert!(
        faithful.ledger().total() >= tight.ledger().total(),
        "faithful {} < tight {}",
        faithful.ledger().total(),
        tight.ledger().total()
    );
}

#[test]
fn epoch_violation_steps_bounded_by_log_delta() {
    // §3 proof structure: between two resets there are at most ~log2(Δ)
    // violation steps (each midpoint update halves the certified gap).
    let n = 12;
    let spec = WorkloadSpec::RandomWalk {
        n,
        lo: 0,
        hi: 1 << 16,
        step_max: 500,
        lazy_p: 0.1,
    };
    let trace = spec.record(9, 600);
    let mut mon = TopkMonitor::new(MonitorConfig::new(n, 3), 1);
    let mut updates_this_epoch = 0u64;
    let mut max_updates = 0u64;
    let mut last_resets = 0u64;
    for t in 0..trace.steps() {
        mon.step(t as u64, trace.step(t));
        let m = mon.metrics();
        if m.resets + 1 != last_resets + 1 && m.resets != last_resets {
            // a reset happened this step
            max_updates = max_updates.max(updates_this_epoch);
            updates_this_epoch = 0;
            last_resets = m.resets;
        }
        let total_updates = m.midpoint_updates;
        let _ = total_updates;
        updates_this_epoch =
            m.midpoint_updates - (m.midpoint_updates - updates_this_epoch).min(m.midpoint_updates);
    }
    // Direct bound via counters: every midpoint update halves a gap that
    // starts at most at Δ ≤ 2^16, so across the run
    // midpoint_updates ≤ (resets + 1) · (log2Δ + 2).
    let m = mon.metrics();
    let bound = (m.resets + 1) * (log2_ceil(1 << 16) as u64 + 2);
    assert!(
        m.midpoint_updates <= bound,
        "midpoint updates {} exceed (resets+1)·(logΔ+2) = {}",
        m.midpoint_updates,
        bound
    );
}

#[test]
fn k_one_and_k_n_minus_one_edges() {
    let spec = WorkloadSpec::RandomWalk {
        n: 7,
        lo: 0,
        hi: 1000,
        step_max: 100,
        lazy_p: 0.2,
    };
    drive(MonitorConfig::new(7, 1), &spec, 4, 300);
    drive(MonitorConfig::new(7, 6), &spec, 4, 300);
    drive(MonitorConfig::new(2, 1), &spec_n(&spec, 2), 4, 300);
}

fn spec_n(spec: &WorkloadSpec, n: usize) -> WorkloadSpec {
    match spec {
        WorkloadSpec::RandomWalk {
            lo,
            hi,
            step_max,
            lazy_p,
            ..
        } => WorkloadSpec::RandomWalk {
            n,
            lo: *lo,
            hi: *hi,
            step_max: *step_max,
            lazy_p: *lazy_p,
        },
        _ => unreachable!(),
    }
}

#[test]
fn crafted_trace_instant_crossing_without_mutual_violation() {
    // The scenario from the design review: a top-k node sinks below a
    // non-top-k node that itself never violates. The handler's full-side
    // protocol must detect the crossing and reset.
    // n=3, k=1. Init: values 100, 40, 10 → top = n0, threshold M = 70.
    // t=1: n0 drops to 50 (violates, 50 < 70); n1 stays at 60?? — 60 > 40
    // would violate [−∞,70]? No: 60 ≤ 70. But is 60 > n1's old value
    // irrelevant — filters are thresholds, so n1 at 60 does NOT violate,
    // yet 60 > 50 means the true top changes!
    let rows = [vec![100u64, 40, 10], vec![50, 60, 10]];
    let mut mon = TopkMonitor::new(MonitorConfig::new(3, 1), 123);
    mon.step(0, &rows[0]);
    assert_eq!(mon.topk(), true_topk(&rows[0], 1));
    mon.step(1, &rows[1]);
    assert_eq!(
        mon.topk(),
        true_topk(&rows[1], 1),
        "crossing without mutual violation must still be caught"
    );
    assert_eq!(mon.metrics().resets, 1, "this requires a reset");
}

#[test]
fn crafted_trace_simultaneous_mass_violation() {
    // Everyone violates at once in both directions.
    let rows = [
        vec![100u64, 90, 80, 10, 20, 30],
        vec![5, 8, 2, 900, 800, 700],
    ];
    let mut mon = TopkMonitor::new(MonitorConfig::new(6, 3), 5);
    mon.step(0, &rows[0]);
    mon.step(1, &rows[1]);
    assert_eq!(mon.topk(), true_topk(&rows[1], 3));
}

#[test]
fn long_quiet_stretches_cost_nothing() {
    let n = 20;
    let mut rows: Vec<Vec<u64>> = Vec::new();
    // Init spread out, then 500 steps of sub-threshold wiggling.
    let base: Vec<u64> = (0..n as u64).map(|i| 1000 + i * 100).collect();
    rows.push(base.clone());
    for t in 0..500u64 {
        let mut row = base.clone();
        for (i, v) in row.iter_mut().enumerate() {
            *v += (t * 7 + i as u64 * 13) % 40; // ±40 ≪ 100 spacing
        }
        rows.push(row);
    }
    let mut mon = TopkMonitor::new(MonitorConfig::new(n, 5), 8);
    mon.step(0, &rows[0]);
    let after_init = mon.ledger().total();
    for (t, row) in rows.iter().enumerate().skip(1) {
        mon.step(t as u64, row);
    }
    let total = mon.ledger().total();
    // The threshold sits mid-gap with ≥ 30 units of slack on each side; the
    // wiggles are < 40 but the k/k+1 spacing is 100, so a handful of early
    // violations may occur before the midpoint settles; after that, silence.
    assert!(
        total - after_init < after_init,
        "quiet stretch cost {} should be far below init cost {}",
        total - after_init,
        after_init
    );
    assert!(mon.silent_steps() > 400, "most steps must be silent");
}
