//! Property-based testing of the full Algorithm 1 stack: for *arbitrary*
//! small traces and seeds, every step's answer is valid, the deep audit is
//! clean, metrics reconcile with the ledger, and structural inequalities of
//! the §3 analysis hold.

use proptest::prelude::*;

use topk_core::audit::audit_monitor;
use topk_core::{is_valid_topk, HandlerMode, Monitor, MonitorConfig, TopkMonitor};
use topk_net::trace::TraceMatrix;
use topk_proto::extremum::BroadcastPolicy;

fn arb_trace(n: usize, max_steps: usize, max_v: u64) -> impl Strategy<Value = TraceMatrix> {
    prop::collection::vec(prop::collection::vec(0..=max_v, n), 1..=max_steps)
        .prop_map(|rows| TraceMatrix::from_rows(&rows))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The central invariant under totally arbitrary inputs (including
    /// massive ties and huge jumps): every step valid, every audit clean.
    #[test]
    fn arbitrary_traces_always_valid(
        trace in arb_trace(6, 15, 1000),
        k in 1usize..=6,
        seed in 0u64..512,
    ) {
        let mut mon = TopkMonitor::new(MonitorConfig::new(6, k), seed);
        for t in 0..trace.steps() {
            let row = trace.step(t);
            mon.step(t as u64, row);
            prop_assert!(
                is_valid_topk(row, &mon.topk()),
                "t={t}: {:?} invalid for {row:?}",
                mon.topk()
            );
            let errors = audit_monitor(&mon, row);
            prop_assert!(errors.is_empty(), "t={t}: audit {errors:?}");
        }
        let l = mon.ledger();
        let m = mon.metrics();
        prop_assert_eq!(l.down, 0);
        prop_assert_eq!(m.total_up(), l.up);
        prop_assert_eq!(m.total_bcast(), l.broadcast);
        prop_assert_eq!(m.handler_calls, m.violation_steps);
    }

    /// Tiny value domains maximize tie pressure — the distinctness
    /// assumption of the paper is thoroughly violated here.
    #[test]
    fn heavy_ties_never_break_validity(
        trace in arb_trace(5, 12, 3),
        k in 1usize..=5,
        seed in 0u64..128,
    ) {
        let mut mon = TopkMonitor::new(MonitorConfig::new(5, k), seed);
        for t in 0..trace.steps() {
            let row = trace.step(t);
            mon.step(t as u64, row);
            prop_assert!(is_valid_topk(row, &mon.topk()));
        }
    }

    /// Every (policy × handler-mode × slack) combination stays valid and
    /// reconciled on arbitrary inputs.
    #[test]
    fn knobs_never_compromise_soundness(
        trace in arb_trace(5, 10, 500),
        k in 1usize..=4,
        seed in 0u64..64,
        policy_every in any::<bool>(),
        faithful in any::<bool>(),
        slack in 0u64..50,
    ) {
        let cfg = MonitorConfig::new(5, k)
            .with_policy(if policy_every { BroadcastPolicy::EveryRound } else { BroadcastPolicy::OnChange })
            .with_handler_mode(if faithful { HandlerMode::Faithful } else { HandlerMode::Tight })
            .with_slack(slack);
        let mut mon = TopkMonitor::new(cfg, seed);
        for t in 0..trace.steps() {
            let row = trace.step(t);
            mon.step(t as u64, row);
            prop_assert!(
                topk_core::is_eps_valid_topk(row, &mon.topk(), 2 * slack),
                "t={t} slack={slack}: {:?} for {row:?}",
                mon.topk()
            );
        }
        let l = mon.ledger();
        let m = mon.metrics();
        prop_assert_eq!(m.total_up(), l.up);
        prop_assert_eq!(m.total_bcast(), l.broadcast);
    }

    /// Replaying the identical trace with the identical seed reproduces the
    /// run exactly — full-stack determinism.
    #[test]
    fn full_stack_determinism(
        trace in arb_trace(4, 10, 200),
        k in 1usize..=4,
        seed in 0u64..64,
    ) {
        let run = || {
            let mut mon = TopkMonitor::new(MonitorConfig::new(4, k), seed);
            for t in 0..trace.steps() {
                mon.step(t as u64, trace.step(t));
            }
            (mon.ledger(), mon.topk(), *mon.metrics())
        };
        prop_assert_eq!(run(), run());
    }
}
