//! Tests of the ε-slack extension: 2ε-validity always holds, ε = 0 is
//! bit-identical to the exact algorithm, and messages decrease monotonically
//! enough in ε on noisy workloads to make the trade-off real.

use topk_core::{is_eps_valid_topk, is_valid_topk, Monitor, MonitorConfig, TopkMonitor};
use topk_streams::WorkloadSpec;

fn run_with_slack(
    spec: &WorkloadSpec,
    n: usize,
    k: usize,
    slack: u64,
    steps: usize,
    seed: u64,
) -> (u64, u64) {
    let trace = spec.record(seed, steps);
    let mut mon = TopkMonitor::new(MonitorConfig::new(n, k).with_slack(slack), seed ^ 1);
    let mut eps_failures = 0u64;
    for t in 0..trace.steps() {
        let row = trace.step(t);
        mon.step(t as u64, row);
        if !is_eps_valid_topk(row, &mon.topk(), 2 * slack) {
            eps_failures += 1;
        }
    }
    (mon.ledger().total(), eps_failures)
}

#[test]
fn zero_slack_is_bit_identical_to_exact() {
    let spec = WorkloadSpec::RandomWalk {
        n: 12,
        lo: 0,
        hi: 10_000,
        step_max: 300,
        lazy_p: 0.2,
    };
    let trace = spec.record(3, 200);
    let mut exact = TopkMonitor::new(MonitorConfig::new(12, 3), 5);
    let mut slack0 = TopkMonitor::new(MonitorConfig::new(12, 3).with_slack(0), 5);
    for t in 0..trace.steps() {
        exact.step(t as u64, trace.step(t));
        slack0.step(t as u64, trace.step(t));
    }
    assert_eq!(exact.ledger(), slack0.ledger());
    assert_eq!(exact.topk(), slack0.topk());
    assert_eq!(exact.metrics(), slack0.metrics());
}

#[test]
fn two_eps_validity_always_holds() {
    for &slack in &[0u64, 10, 100, 1000, 10_000] {
        for seed in 0..3u64 {
            let spec = WorkloadSpec::RandomWalk {
                n: 10,
                lo: 0,
                hi: 50_000,
                step_max: 2_000,
                lazy_p: 0.1,
            };
            let (_, failures) = run_with_slack(&spec, 10, 3, slack, 300, seed);
            assert_eq!(failures, 0, "slack={slack} seed={seed}");
        }
    }
}

#[test]
fn validity_holds_under_adversarial_churn_with_slack() {
    let spec = WorkloadSpec::BoundaryCross {
        n: 8,
        base: 10_000,
        spread: 400,
        amplitude: 300,
        period: 12,
    };
    let (_, failures) = run_with_slack(&spec, 8, 1, 50, 400, 1);
    assert_eq!(failures, 0);
    let spec2 = WorkloadSpec::IidUniform {
        n: 8,
        lo: 0,
        hi: 5_000,
    };
    let (_, failures2) = run_with_slack(&spec2, 8, 3, 200, 200, 2);
    assert_eq!(failures2, 0);
}

#[test]
fn slack_reduces_messages_on_noisy_streams() {
    // Sensor-like noise around stable positions: exact monitoring keeps
    // paying for boundary jitter, slack absorbs it.
    let spec = WorkloadSpec::GaussianWalk {
        n: 16,
        lo: 0,
        hi: 100_000,
        sigma: 400.0,
    };
    let (m0, _) = run_with_slack(&spec, 16, 4, 0, 500, 7);
    let (m2k, _) = run_with_slack(&spec, 16, 4, 2_000, 500, 7);
    let (m10k, _) = run_with_slack(&spec, 16, 4, 10_000, 500, 7);
    assert!(
        m2k < m0,
        "slack 2000 ({m2k}) must beat exact ({m0}) on noisy input"
    );
    assert!(
        m10k <= m2k,
        "more slack ({m10k}) must not cost more than less ({m2k})"
    );
}

#[test]
fn huge_slack_approaches_silence() {
    // With slack ≫ the whole value range, after initialization nothing can
    // ever violate.
    let spec = WorkloadSpec::IidUniform {
        n: 8,
        lo: 0,
        hi: 1_000,
    };
    let trace = spec.record(1, 300);
    let mut mon = TopkMonitor::new(MonitorConfig::new(8, 2).with_slack(1 << 30), 1);
    mon.step(0, trace.step(0));
    let after_init = mon.ledger().total();
    for t in 1..trace.steps() {
        mon.step(t as u64, trace.step(t));
    }
    assert_eq!(mon.ledger().total(), after_init);
    // And the answer is still (2ε-)valid — trivially, with ε this large.
    assert!(is_eps_valid_topk(
        trace.step(trace.steps() - 1),
        &mon.topk(),
        2 << 30
    ));
}

#[test]
fn exact_validity_can_fail_with_slack_but_rarely_matters() {
    // Demonstrate the trade-off is real: find at least one step where the
    // slacked answer is NOT exactly valid (yet always 2ε-valid).
    let spec = WorkloadSpec::GaussianWalk {
        n: 10,
        lo: 0,
        hi: 20_000,
        sigma: 300.0,
    };
    let trace = spec.record(11, 400);
    let slack = 3_000u64;
    let mut mon = TopkMonitor::new(MonitorConfig::new(10, 3).with_slack(slack), 4);
    let mut inexact_steps = 0u64;
    for t in 0..trace.steps() {
        let row = trace.step(t);
        mon.step(t as u64, row);
        assert!(is_eps_valid_topk(row, &mon.topk(), 2 * slack));
        if !is_valid_topk(row, &mon.topk()) {
            inexact_steps += 1;
        }
    }
    assert!(
        inexact_steps > 0,
        "with σ=300 and ε=3000 some steps must be only approximately valid"
    );
}
