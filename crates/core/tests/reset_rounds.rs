//! Round-accounting regression tests for the two FILTERRESET strategies.
//!
//! The round schedule of a reset is **deterministic** — participants may or
//! may not send in any round, but the coordinator always runs the full
//! schedule — so these are exact pins, not bounds with slack:
//!
//! * legacy:  `(k+1)·(⌈log₂n⌉ + 1) + 1` coordinator rounds per reset;
//! * batched: `⌈log₂(max(1, ⌊n/(k+1)⌋))⌉ + k + 3` — the `O(log n + k)` claim of the batched
//!   k-select sweep. A separate assertion keeps it under `4·(⌈log₂n⌉ + k)`
//!   so the complexity class can't silently regress even if the exact
//!   schedule shifts by a constant.
//!
//! Rounds are counted by the coordinator itself ([`RunMetrics::reset_rounds`])
//! so the pin is runtime-independent; for the init step we cross-check the
//! metric against the sequential runtime's `micro_rounds_run`.

use topk_core::metrics::RunMetrics;
use topk_core::{Monitor, MonitorConfig, ResetStrategy, TopkMonitor};
use topk_net::rng::log2_ceil;

/// (n, k) grid covering tiny, boundary (k+1 == n) and wide configurations.
const GRID: &[(usize, usize)] = &[
    (2, 1),
    (3, 2),
    (8, 1),
    (8, 4),
    (8, 7),
    (64, 3),
    (100, 10),
    (1000, 1),
    (1000, 8),
    (4096, 32),
];

fn legacy_rounds(n: usize, k: usize) -> u64 {
    (k as u64 + 1) * (log2_ceil(n as u64) as u64 + 1) + 1
}

fn batched_rounds(n: usize, k: usize) -> u64 {
    // The k-select sweep samples at bound ⌊n/(k+1)⌋ (schedule starts at
    // probability (k+1)/n), so its final round comes log₂(k+1) earlier
    // than a maximum search's.
    let bound = (n as u64 / (k as u64 + 1)).max(1);
    log2_ceil(bound) as u64 + k as u64 + 3
}

/// Run the `t = 0` init reset and return `(reset_rounds, micro_rounds_run)`.
fn init_reset(n: usize, k: usize, strategy: ResetStrategy, seed: u64) -> (u64, u64) {
    let cfg = MonitorConfig::new(n, k).with_reset(strategy);
    let mut mon = TopkMonitor::new(cfg, seed);
    // Distinct values so the selection is unique (rounds don't depend on
    // the values, but the answer check below should be strict).
    let values: Vec<u64> = (0..n as u64)
        .map(|i| (i * 7919) % (131 * n as u64))
        .collect();
    mon.step(0, &values);
    assert_eq!(mon.topk(), topk_net::id::true_topk(&values, k));
    (mon.metrics().reset_rounds, mon.micro_rounds_run())
}

#[test]
fn legacy_reset_rounds_exact() {
    for &(n, k) in GRID {
        for seed in [1u64, 42, 999] {
            let (rounds, micro) = init_reset(n, k, ResetStrategy::Legacy, seed);
            assert_eq!(
                rounds,
                legacy_rounds(n, k),
                "legacy (n={n}, k={k}, seed={seed})"
            );
            assert_eq!(micro, rounds, "init step is reset-only (n={n}, k={k})");
        }
    }
}

#[test]
fn batched_reset_rounds_exact_and_in_class() {
    for &(n, k) in GRID {
        for seed in [1u64, 42, 999] {
            let (rounds, micro) = init_reset(n, k, ResetStrategy::Batched, seed);
            assert_eq!(
                rounds,
                batched_rounds(n, k),
                "batched (n={n}, k={k}, seed={seed})"
            );
            assert_eq!(micro, rounds, "init step is reset-only (n={n}, k={k})");
            // The complexity-class guard: O(log n + k) with c = 4.
            let budget = 4 * (log2_ceil(n as u64) as u64 + k as u64);
            assert!(
                rounds <= budget,
                "batched reset (n={n}, k={k}): {rounds} rounds exceed 4·(⌈log₂n⌉+k) = {budget}"
            );
        }
    }
}

#[test]
fn batched_beats_legacy_for_every_grid_point_with_k_at_least_2() {
    // For k = 1 the two schedules tie or nearly tie; from k = 2 on the
    // batched sweep is strictly cheaper, increasingly so in k.
    for &(n, k) in GRID.iter().filter(|&&(_, k)| k >= 2) {
        assert!(
            batched_rounds(n, k) < legacy_rounds(n, k),
            "(n={n}, k={k}): batched {} vs legacy {}",
            batched_rounds(n, k),
            legacy_rounds(n, k)
        );
    }
    // And the asymptotic gap is the (k+1)× the tentpole claims: at
    // n = 4096, k = 32 the legacy schedule pays > 6× the batched rounds.
    assert!(legacy_rounds(4096, 32) > 6 * batched_rounds(4096, 32));
}

/// Fire-round calendar cost pin: a batched init reset *polls* each node
/// O(1) times, not once per sampling round. Exactly: the `ResetStart`
/// fan-out (`n`), one fire-phase visit for every node whose scheduled
/// round is ≥ 1 (`n − z`, `z` = round-0 firers ≥ 0), one poll per winner
/// announcement (`k + 1`), and the `ResetDone` fan-out (`n`) — so
/// `2n + k + 1 ≤ micro_polls ≤ 3n + k + 1`, vs the pre-calendar
/// `≈ n·⌈log₂(n/(k+1))⌉` sampling-round polls alone.
#[test]
fn batched_init_polls_each_node_a_constant_number_of_times() {
    for &(n, k) in GRID.iter().filter(|&&(n, k)| n > k + 1) {
        for seed in [1u64, 42, 999] {
            let cfg = MonitorConfig::new(n, k).with_reset(ResetStrategy::Batched);
            let mut mon = TopkMonitor::new(cfg, seed);
            let values: Vec<u64> = (0..n as u64)
                .map(|i| (i * 7919) % (131 * n as u64))
                .collect();
            mon.step(0, &values);
            let polls = mon.micro_polls();
            let (n, k) = (n as u64, k as u64);
            assert!(
                polls <= 3 * n + k + 1,
                "(n={n}, k={k}, seed={seed}): {polls} polls exceed 3n+k+1"
            );
            assert!(
                polls >= 2 * n,
                "(n={n}, k={k}, seed={seed}): {polls} polls below the 2n floor"
            );
        }
    }
}

/// A violation step's window rounds poll each participant at most once:
/// with every node violating (full order flip), the whole step — violation
/// window, handler, reset — stays within a constant number of fan-outs
/// instead of paying ≈ n·⌈log₂(n−k)⌉ for the window alone.
#[test]
fn violation_step_polls_are_linear_not_n_log_n() {
    let (n, k) = (1024usize, 8usize);
    let cfg = MonitorConfig::new(n, k).with_reset(ResetStrategy::Batched);
    let mut mon = TopkMonitor::new(cfg, 7);
    let mut values: Vec<u64> = (0..n as u64).map(|i| 1_000 + i * 100).collect();
    mon.step(0, &values);
    let after_init = mon.micro_polls();

    // Flip the total order: every node violates its filter.
    for (i, v) in values.iter_mut().enumerate() {
        *v = 1_000 + (n - i) as u64 * 100;
    }
    mon.step(1, &values);
    assert!(mon.metrics().resets >= 1, "the flip must force a reset");
    let step_polls = mon.micro_polls() - after_init;
    // Violation window ≤ n fire visits; handler ≤ start fan-out n + n fire
    // visits; reset ≤ start n + n + (k+1) + done n — comfortably ≤ 7n,
    // while one pre-calendar violation window alone cost ~n·log₂(n−k) ≈ 10n.
    assert!(
        step_polls <= 7 * n as u64,
        "all-violating step polled {step_polls} times (> 7n = {})",
        7 * n
    );
}

/// A violation-forced reset (not just init) follows the same schedules.
#[test]
fn mid_stream_reset_rounds_match_init_schedule() {
    for strategy in [ResetStrategy::Batched, ResetStrategy::Legacy] {
        let n = 64;
        let k = 4;
        let cfg = MonitorConfig::new(n, k).with_reset(strategy);
        let mut mon = TopkMonitor::new(cfg, 7);
        let mut values: Vec<u64> = (0..n as u64).map(|i| 1_000 + i * 100).collect();
        mon.step(0, &values);
        let after_init = mon.metrics().reset_rounds;

        // Flip the total order: previous top-k collapse to the bottom —
        // the gap certificate cannot absorb this, forcing a reset.
        for (i, v) in values.iter_mut().enumerate() {
            *v = 1_000 + (n - i) as u64 * 100;
        }
        mon.step(1, &values);
        let m: &RunMetrics = mon.metrics();
        assert!(m.resets >= 1, "the order flip must force a reset");
        let per_reset = match strategy {
            ResetStrategy::Legacy => legacy_rounds(n, k),
            ResetStrategy::Batched => batched_rounds(n, k),
        };
        assert_eq!(
            m.reset_rounds - after_init,
            m.resets * per_reset,
            "{strategy:?}: every mid-stream reset must follow the schedule"
        );
        assert_eq!(mon.topk(), topk_net::id::true_topk(&values, k));
    }
}
