//! Statistical pins for the §4 message-complexity theorems, seed-streamed
//! like the proptest suites: `PROPTEST_SEED` (or `MSG_BOUNDS_SEED`) rotates
//! the whole harness onto an independent seed stream, so the CI matrix
//! exercises fresh randomness while any one run stays deterministic.
//!
//! * Theorem 4.2: the empirical mean up-message count of a MAXIMUMPROTOCOL
//!   execution stays ≤ `2·log₂N + 1` (no slack needed — the bound is loose
//!   by ~2× in practice, and the harness averages hundreds of runs).
//! * The batched k-select sweep ([`run_kselect`]) stays ≤
//!   `2·c·(log₂(N/c)+1) + 2·log₂N + 1` (`kselect_up_msgs_bound`), again
//!   with ~2× empirical headroom, *and* strictly below the
//!   `c·(2·log₂N + 1)` that `c` sequential maximum searches would pay —
//!   the measured advantage of batching FILTERRESET.

use rand::seq::SliceRandom;

use topk_net::id::NodeId;
use topk_net::ledger::CommLedger;
use topk_net::rng::{derive_seed, substream_rng};
use topk_proto::analysis::{expected_up_msgs_bound, kselect_up_msgs_bound};
use topk_proto::extremum::BroadcastPolicy;
use topk_proto::runner::{run_kselect, run_kselect_scheduled, run_max, run_max_scheduled};

/// Seed-stream root: rotated by env so CI can diversify runs.
fn harness_seed() -> u64 {
    for var in ["MSG_BOUNDS_SEED", "PROPTEST_SEED"] {
        if let Ok(s) = std::env::var(var) {
            if let Ok(v) = s.trim().parse::<u64>() {
                return derive_seed(0x6d73_675f, v);
            }
        }
    }
    0x6d73_675f
}

/// `(id, value)` entries for a permutation of `0..n`, reshuffled per trial
/// unless `worst` (ascending values — the classic survival-maximizing
/// stress input for the sampling protocols).
struct Inputs {
    values: Vec<u64>,
    rng: rand_chacha::ChaCha12Rng,
    worst: bool,
}

impl Inputs {
    fn new(n: usize, worst: bool, seed: u64) -> Self {
        Inputs {
            values: (0..n as u64).collect(),
            rng: substream_rng(seed, 0xda7a),
            worst,
        }
    }

    fn next(&mut self) -> Vec<(NodeId, u64)> {
        if !self.worst {
            self.values.shuffle(&mut self.rng);
        }
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (NodeId(i as u32), v))
            .collect()
    }
}

fn mean_max_ups(n: usize, trials: u64, worst: bool, seed: u64) -> f64 {
    let mut inputs = Inputs::new(n, worst, seed);
    let mut total = 0u64;
    for trial in 0..trials {
        let entries = inputs.next();
        let mut ledger = CommLedger::new();
        let out = run_max(
            &entries,
            n as u64,
            BroadcastPolicy::OnChange,
            seed,
            trial,
            &mut ledger,
        );
        assert_eq!(out.winner.unwrap().value, n as u64 - 1, "Las Vegas");
        total += out.up_msgs;
    }
    total as f64 / trials as f64
}

fn mean_kselect_ups(n: usize, c: usize, trials: u64, worst: bool, seed: u64) -> f64 {
    let mut inputs = Inputs::new(n, worst, seed);
    let mut total = 0u64;
    for trial in 0..trials {
        let entries = inputs.next();
        let mut ledger = CommLedger::new();
        let out = run_kselect(
            &entries,
            c,
            n as u64,
            BroadcastPolicy::OnChange,
            false,
            seed,
            trial,
            &mut ledger,
        );
        // Las Vegas: exact top-c, best-first, every trial.
        assert_eq!(out.winners.len(), c.min(n));
        for (rank, w) in out.winners.iter().enumerate() {
            assert_eq!(w.value, n as u64 - 1 - rank as u64);
        }
        assert_eq!(ledger.up(), out.up_msgs);
        total += out.up_msgs;
    }
    total as f64 / trials as f64
}

#[test]
fn maximum_protocol_mean_within_theorem_42_bound() {
    let seed = harness_seed();
    for (exp, worst) in [
        (4u32, false),
        (6, false),
        (8, false),
        (10, false),
        (8, true),
    ] {
        let n = 1usize << exp;
        let mean = mean_max_ups(n, 400, worst, derive_seed(seed, exp as u64));
        let bound = expected_up_msgs_bound(n as u64);
        assert!(
            mean <= bound,
            "n={n} worst={worst}: mean {mean:.2} exceeds 2·log₂N + 1 = {bound:.2}"
        );
        assert!(mean >= 1.0, "protocol cannot be silent");
    }
}

#[test]
fn kselect_mean_within_bound_and_below_iterated_searches() {
    let seed = harness_seed();
    for (i, &(n, c)) in [
        (64usize, 2usize),
        (64, 9),
        (256, 9),
        (256, 17),
        (1024, 9),
        (1024, 33),
    ]
    .iter()
    .enumerate()
    {
        for worst in [false, true] {
            let s = derive_seed(seed, ((i as u64) << 1) | worst as u64);
            let mean = mean_kselect_ups(n, c, 300, worst, s);
            let bound = kselect_up_msgs_bound(c as u64, n as u64);
            assert!(
                mean <= bound,
                "n={n} c={c} worst={worst}: mean {mean:.2} exceeds kselect bound {bound:.2}"
            );
            // The batching advantage: strictly below what c sequential
            // maximum searches pay in expectation (Theorem 4.2 per search).
            let iterated = c as f64 * expected_up_msgs_bound(n as u64);
            assert!(
                mean < iterated,
                "n={n} c={c} worst={worst}: mean {mean:.2} not below c·(2·log₂N+1) = {iterated:.2}"
            );
            // And at least the c winners must report.
            assert!(mean >= c as f64);
        }
    }
}

/// The fire-round calendar drive (one schedule draw per participant, lazy
/// deactivation at fire time) obeys the same Theorem 4.2 mean bound as the
/// per-round coin chain — the distributional-equivalence claim of
/// `topk_proto::schedule`, checked end to end through the runner.
#[test]
fn scheduled_maximum_protocol_mean_within_theorem_42_bound() {
    let seed = harness_seed();
    for (exp, worst) in [(4u32, false), (8, false), (10, false), (8, true)] {
        let n = 1usize << exp;
        let mut inputs = Inputs::new(n, worst, derive_seed(seed, 50 + exp as u64));
        let mut total = 0u64;
        let trials = 400u64;
        for trial in 0..trials {
            let entries = inputs.next();
            let mut ledger = CommLedger::new();
            let out = run_max_scheduled(
                &entries,
                n as u64,
                BroadcastPolicy::OnChange,
                derive_seed(seed, 60 + exp as u64),
                trial,
                &mut ledger,
            );
            assert_eq!(out.winner.unwrap().value, n as u64 - 1, "Las Vegas");
            total += out.up_msgs;
        }
        let mean = total as f64 / trials as f64;
        let bound = expected_up_msgs_bound(n as u64);
        assert!(
            mean <= bound,
            "scheduled n={n} worst={worst}: mean {mean:.2} exceeds 2·log₂N + 1 = {bound:.2}"
        );
        assert!(mean >= 1.0);
    }
}

/// Same pin for the one-draw k-select sweep: the calendar drive stays
/// within the kselect bound *and* below iterated maximum searches.
#[test]
fn scheduled_kselect_mean_within_bound_and_below_iterated_searches() {
    let seed = harness_seed();
    for (i, &(n, c)) in [(64usize, 9usize), (256, 9), (1024, 33)].iter().enumerate() {
        for worst in [false, true] {
            let s = derive_seed(seed, (80 + ((i as u64) << 1)) | worst as u64);
            let mut inputs = Inputs::new(n, worst, s);
            let mut total = 0u64;
            let trials = 300u64;
            for trial in 0..trials {
                let entries = inputs.next();
                let mut ledger = CommLedger::new();
                let out = run_kselect_scheduled(
                    &entries,
                    c,
                    n as u64,
                    BroadcastPolicy::OnChange,
                    false,
                    s,
                    trial,
                    &mut ledger,
                );
                assert_eq!(out.winners.len(), c.min(n));
                for (rank, w) in out.winners.iter().enumerate() {
                    assert_eq!(w.value, n as u64 - 1 - rank as u64, "Las Vegas top-c");
                }
                total += out.up_msgs;
            }
            let mean = total as f64 / trials as f64;
            let bound = kselect_up_msgs_bound(c as u64, n as u64);
            assert!(
                mean <= bound,
                "scheduled n={n} c={c} worst={worst}: mean {mean:.2} exceeds {bound:.2}"
            );
            let iterated = c as f64 * expected_up_msgs_bound(n as u64);
            assert!(
                mean < iterated,
                "scheduled n={n} c={c} worst={worst}: mean {mean:.2} ≥ iterated {iterated:.2}"
            );
            assert!(mean >= c as f64);
        }
    }
}

#[test]
fn kselect_message_growth_is_logarithmic_in_n_at_fixed_c() {
    // At fixed c, quadrupling n adds ≈ 2c·log₂4 = a constant (in n) number
    // of messages — the Θ(c·log(N/c)) signature. Successive differences
    // must stay bounded (well below doubling).
    let seed = harness_seed();
    let c = 9;
    let m256 = mean_kselect_ups(256, c, 300, false, derive_seed(seed, 100));
    let m1024 = mean_kselect_ups(1024, c, 300, false, derive_seed(seed, 101));
    let m4096 = mean_kselect_ups(4096, c, 300, false, derive_seed(seed, 102));
    let d1 = m1024 - m256;
    let d2 = m4096 - m1024;
    assert!(
        d1 > 0.0 && d2 > 0.0,
        "more participants must cost more: d1={d1:.2} d2={d2:.2}"
    );
    let add_bound = 2.0 * c as f64 * 2.0 + 8.0; // 2c·log₂4 plus slack
    assert!(
        d1 < add_bound && d2 < add_bound,
        "growth per 4× n must be additive: d1={d1:.2} d2={d2:.2} bound={add_bound:.2}"
    );
}

#[test]
fn kselect_tail_decays() {
    // High-probability flavour: Pr[X > 1.5·bound] should be tiny (the mean
    // sits near bound/2 and the tail is sub-exponential).
    let seed = harness_seed();
    let (n, c) = (256usize, 9usize);
    let bound = kselect_up_msgs_bound(c as u64, n as u64);
    let mut inputs = Inputs::new(n, false, derive_seed(seed, 7));
    let trials = 1000u64;
    let mut exceed = 0u32;
    for trial in 0..trials {
        let entries = inputs.next();
        let mut ledger = CommLedger::new();
        let out = run_kselect(
            &entries,
            c,
            n as u64,
            BroadcastPolicy::OnChange,
            false,
            derive_seed(seed, 8),
            trial,
            &mut ledger,
        );
        if out.up_msgs as f64 > 1.5 * bound {
            exceed += 1;
        }
    }
    assert!(
        exceed as f64 / trials as f64 <= 0.01,
        "Pr[X > 1.5·bound] = {}",
        exceed as f64 / trials as f64
    );
}
