//! Algorithm 2 of the paper — the randomized Las Vegas protocol that
//! determines the maximum (or minimum) value held by a set of nodes — as a
//! pair of driver-agnostic state machines.
//!
//! Protocol (MAXIMUMPROTOCOL(N), N an upper bound on the participant count):
//! rounds `r = 0..=⌈log₂N⌉`. In round `r` every still-active participant
//! independently sends its `(id, value)` to the coordinator with probability
//! `2^r / N` (probability 1 in the final round). The coordinator broadcasts
//! the best value seen so far; participants that cannot beat it deactivate.
//! The protocol always returns the exact extremum (Las Vegas); only the
//! message count is random — `E[#up-messages] ≤ 2·log₂N + 1` (Theorem 4.2).
//!
//! Max and min are the same machine instantiated at a different
//! [`ProtocolOrder`]; ties are broken by node id (lower id wins) so the
//! protocol is total on arbitrary inputs.

use std::marker::PhantomData;

use rand::Rng;
use topk_net::id::{MinEntry, NodeId, RankEntry, Value};
use topk_net::rng::{bernoulli_pow2, log2_ceil};
use topk_net::wire::Report;

/// Direction of the extremum search: a strict weak order on reports where
/// "better" means closer to the protocol's answer.
pub trait ProtocolOrder: Copy + Send + Sync + 'static {
    /// `true` iff `a` is strictly better than `b`.
    fn better(a: Report, b: Report) -> bool;
}

/// Maximum search: higher value wins, ties won by lower node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxOrder;

impl ProtocolOrder for MaxOrder {
    #[inline]
    fn better(a: Report, b: Report) -> bool {
        RankEntry::new(a.value, a.id) > RankEntry::new(b.value, b.id)
    }
}

/// Minimum search: lower value wins, ties won by lower node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinOrder;

impl ProtocolOrder for MinOrder {
    #[inline]
    fn better(a: Report, b: Report) -> bool {
        MinEntry::new(a.value, a.id) > MinEntry::new(b.value, b.id)
    }
}

/// When the coordinator broadcasts the running extremum during the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize, Default)]
pub enum BroadcastPolicy {
    /// Broadcast only when the running extremum improved since the last
    /// announcement (silence ⇒ unchanged — free in the synchronous model).
    /// This is the default.
    #[default]
    OnChange,
    /// Literal reading of Algorithm 2 line 18: once any value has been seen,
    /// broadcast the running extremum after every round.
    EveryRound,
}

/// Node-side state of one protocol execution.
///
/// Two equivalent drives exist:
///
/// * **per-round** ([`Participant::round`]) — flip the `2^r/N` coin every
///   round, the literal Algorithm 2 loop;
/// * **calendar** ([`Participant::schedule`] + [`Participant::fire`]) — draw
///   the first-send round `r*` once from the fixed
///   [`FireDist`](crate::schedule::FireDist) of `N`, then act only at `r*`:
///   apply whatever announcements accumulated, withdraw if dominated, send
///   otherwise. Because a participant never acts again after sending or
///   deactivating, the two drives are distributionally identical
///   (`crate::schedule` documents the argument and the `2⁻⁶⁴`-per-round
///   fixed-point caveat); the calendar is what lets a runtime visit only
///   the round's scheduled firers.
#[derive(Debug, Clone)]
pub struct Participant<O: ProtocolOrder> {
    report: Report,
    n_bound: u64,
    active: bool,
    /// Scheduled first-send round (calendar drive only).
    fire_round: Option<u32>,
    _order: PhantomData<O>,
}

impl<O: ProtocolOrder> Participant<O> {
    /// `n_bound` is the protocol parameter `N` — any upper bound on the
    /// number of participants (the paper invokes e.g. `MAXIMUMPROTOCOL(n-k)`).
    pub fn new(id: NodeId, value: Value, n_bound: u64) -> Self {
        assert!(n_bound >= 1, "protocol bound must be positive");
        Participant {
            report: Report { id, value },
            n_bound,
            active: true,
            fire_round: None,
            _order: PhantomData,
        }
    }

    /// Index of the final round (send probability reaches 1).
    #[inline]
    pub fn last_round(&self) -> u32 {
        log2_ceil(self.n_bound)
    }

    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    #[inline]
    pub fn report(&self) -> Report {
        self.report
    }

    /// Execute round `r`: first apply the coordinator's latest announcement
    /// (deactivating if it cannot be beaten), then flip the `2^r/N` coin.
    /// Returns the report to send, if any. Once a participant sends or
    /// deactivates it never acts again.
    pub fn round(
        &mut self,
        r: u32,
        announced: Option<Report>,
        rng: &mut impl Rng,
    ) -> Option<Report> {
        if !self.active {
            return None;
        }
        if let Some(best) = announced {
            if !O::better(self.report, best) {
                // Line 8: the announced extremum beats us — withdraw.
                self.active = false;
                return None;
            }
        }
        if bernoulli_pow2(rng, r, self.n_bound) {
            self.active = false;
            return Some(self.report);
        }
        None
    }

    /// Calendar drive, step 1: draw the first-send round once (`dist` must
    /// be the [`FireDist`](crate::schedule::FireDist) of this participant's
    /// bound). Returns `r*`; the runtime should poll the participant again
    /// exactly at that round.
    pub fn schedule(&mut self, dist: &crate::schedule::FireDist, rng: &mut impl Rng) -> u32 {
        debug_assert_eq!(
            dist.n_bound(),
            self.n_bound,
            "schedule must come from this participant's bound"
        );
        let r = dist.sample(rng);
        self.fire_round = Some(r);
        r
    }

    /// The scheduled first-send round, if [`Participant::schedule`] ran.
    #[inline]
    pub fn fire_round(&self) -> Option<u32> {
        self.fire_round
    }

    /// Calendar drive, step 2 (lazy announcement delivery): apply one
    /// coordinator announcement the participant may have skipped —
    /// deactivates it when the announcement cannot be beaten, exactly the
    /// line-8 comparison [`Participant::round`] performs eagerly.
    pub fn apply_announcement(&mut self, announced: Report) {
        if self.active && !O::better(self.report, announced) {
            self.active = false;
        }
    }

    /// Calendar drive, step 3: resolve the scheduled send at `r*`. Returns
    /// the report iff the participant is still active (no dominating
    /// announcement arrived first); either way it never acts again.
    pub fn fire(&mut self) -> Option<Report> {
        debug_assert!(self.fire_round.is_some(), "fire requires a schedule");
        if self.active {
            self.active = false;
            Some(self.report)
        } else {
            None
        }
    }
}

/// Coordinator-side state of one protocol execution.
#[derive(Debug, Clone)]
pub struct Aggregator<O: ProtocolOrder> {
    best: Option<Report>,
    announced: Option<Report>,
    n_bound: u64,
    reports_received: u64,
    _order: PhantomData<O>,
}

impl<O: ProtocolOrder> Aggregator<O> {
    pub fn new(n_bound: u64) -> Self {
        assert!(n_bound >= 1, "protocol bound must be positive");
        Aggregator {
            best: None,
            announced: None,
            n_bound,
            reports_received: 0,
            _order: PhantomData,
        }
    }

    /// Index of the final round.
    #[inline]
    pub fn last_round(&self) -> u32 {
        log2_ceil(self.n_bound)
    }

    /// Absorb one report; returns `true` if the running extremum improved.
    pub fn absorb(&mut self, report: Report) -> bool {
        self.reports_received += 1;
        match self.best {
            None => {
                self.best = Some(report);
                true
            }
            Some(cur) if O::better(report, cur) => {
                self.best = Some(report);
                true
            }
            _ => false,
        }
    }

    /// What (if anything) to broadcast after the current round under
    /// `policy`. Call [`Self::mark_announced`] when the broadcast is
    /// actually emitted.
    pub fn pending_announcement(&self, policy: BroadcastPolicy) -> Option<Report> {
        let best = self.best?;
        match policy {
            BroadcastPolicy::OnChange => (self.announced != Some(best)).then_some(best),
            BroadcastPolicy::EveryRound => Some(best),
        }
    }

    /// Record that `pending_announcement` was broadcast.
    pub fn mark_announced(&mut self) {
        self.announced = self.best;
    }

    /// Current running extremum.
    #[inline]
    pub fn best(&self) -> Option<Report> {
        self.best
    }

    /// Exact result; only meaningful after the final round completed.
    #[inline]
    pub fn result(&self) -> Option<Report> {
        self.best
    }

    /// Number of reports received so far (the Theorem 4.2 quantity).
    #[inline]
    pub fn reports_received(&self) -> u64 {
        self.reports_received
    }
}

/// Convenience aliases.
pub type MaxParticipant = Participant<MaxOrder>;
pub type MinParticipant = Participant<MinOrder>;
pub type MaxAggregator = Aggregator<MaxOrder>;
pub type MinAggregator = Aggregator<MinOrder>;

#[cfg(test)]
mod tests {
    use super::*;
    use topk_net::rng::substream_rng;

    #[test]
    fn orders_break_ties_by_low_id() {
        let a = Report {
            id: NodeId(1),
            value: 5,
        };
        let b = Report {
            id: NodeId(2),
            value: 5,
        };
        assert!(MaxOrder::better(a, b));
        assert!(!MaxOrder::better(b, a));
        assert!(MinOrder::better(a, b));
        assert!(!MinOrder::better(b, a));
    }

    #[test]
    fn participant_deactivates_on_dominating_announcement() {
        let mut p: MaxParticipant = Participant::new(NodeId(3), 10, 8);
        let mut rng = substream_rng(1, 1);
        let beaten = p.round(
            0,
            Some(Report {
                id: NodeId(0),
                value: 11,
            }),
            &mut rng,
        );
        assert_eq!(beaten, None);
        assert!(!p.is_active());
    }

    #[test]
    fn participant_always_sends_in_final_round() {
        for seed in 0..20 {
            let mut p: MaxParticipant = Participant::new(NodeId(0), 42, 8);
            let mut rng = substream_rng(seed, 0);
            let last = p.last_round();
            let mut sent = None;
            for r in 0..=last {
                if let Some(rep) = p.round(r, None, &mut rng) {
                    sent = Some((r, rep));
                    break;
                }
            }
            let (_, rep) = sent.expect("must send by the final round");
            assert_eq!(rep.value, 42);
        }
    }

    #[test]
    fn aggregator_tracks_best_and_announcements() {
        let mut a: MaxAggregator = Aggregator::new(8);
        assert_eq!(a.pending_announcement(BroadcastPolicy::OnChange), None);
        assert!(a.absorb(Report {
            id: NodeId(5),
            value: 3
        }));
        assert!(a.pending_announcement(BroadcastPolicy::OnChange).is_some());
        a.mark_announced();
        assert_eq!(a.pending_announcement(BroadcastPolicy::OnChange), None);
        assert_eq!(
            a.pending_announcement(BroadcastPolicy::EveryRound)
                .unwrap()
                .value,
            3
        );
        // A worse report does not improve the best.
        assert!(!a.absorb(Report {
            id: NodeId(6),
            value: 2
        }));
        assert_eq!(a.result().unwrap().value, 3);
        assert_eq!(a.reports_received(), 2);
    }

    #[test]
    fn min_aggregator_prefers_smaller() {
        let mut a: MinAggregator = Aggregator::new(4);
        a.absorb(Report {
            id: NodeId(0),
            value: 9,
        });
        a.absorb(Report {
            id: NodeId(1),
            value: 4,
        });
        a.absorb(Report {
            id: NodeId(2),
            value: 7,
        });
        assert_eq!(a.result().unwrap().value, 4);
    }
}
