//! Closed-form quantities from the paper's §4 analysis, used by tests and
//! experiments to compare measurement against theory.

/// Theorem 4.2 upper bound on the expected number of node→coordinator
/// messages of Algorithm 2 with participant bound `N`: `2·log₂N + 1`.
///
/// (For `N = 1` the protocol runs a single probability-1 round, so the
/// bound degenerates to 1.)
pub fn expected_up_msgs_bound(n_bound: u64) -> f64 {
    assert!(n_bound >= 1);
    2.0 * (n_bound as f64).log2() + 1.0
}

/// Lemma 4.1 upper bound on the probability that the node of rank `i`
/// (1-based: `i = 1` holds the maximum) sends a message:
///
/// `Pr[X_i = 1] ≤ 1/N + Σ_{r=1}^{log N} (2^r / N) · (1 − 2^{r-1}/N)^i`.
pub fn lemma41_send_probability_bound(rank_i: u64, n_bound: u64) -> f64 {
    assert!(rank_i >= 1 && n_bound >= 1);
    let n = n_bound as f64;
    let log_n = topk_net::rng::log2_ceil(n_bound);
    let mut p = 1.0 / n;
    for r in 1..=log_n {
        let send = (2f64.powi(r as i32) / n).min(1.0);
        let survive = (1.0 - (2f64.powi(r as i32 - 1) / n).min(1.0)).max(0.0);
        p += send * survive.powi(rank_i as i32);
    }
    p.min(1.0)
}

/// Upper bound on the expected number of node→coordinator messages of the
/// batched k-select sweep ([`crate::kselect::KSelectAggregator`]) selecting
/// the top `c = count` among up to `N` participants:
///
/// `E[#up-messages] ≤ 2·c·(log₂(N/c) + 1) + 2·log₂N + 1`.
///
/// Generalizing Lemma 4.1: the rank-`i` node stays active until `c` of the
/// `i − 1` better nodes have reported, which under the doubling schedule
/// happens once the cumulative send probability reaches ≈ `c/i` — so
/// `Pr[rank i sends] ≈ min(1, 2c/i)` and the sum telescopes to
/// `Θ(c·log(N/c))`, plus a Theorem 4.2-style `O(log N)` term for the
/// survivors of the final bar. Note this is *not* `O(c + log N)`: the final
/// bar (the true `c`-th best) can only be assembled once all `c` winners
/// reported, which under uniform sampling happens late — the extra
/// `log(N/c)` factor on `c` is inherent to bar-deactivated uniform
/// doubling. It still improves on `c` sequential maximum searches
/// (`c·(2·log₂N + 1)`, see [`expected_up_msgs_bound`]) by the `log c`
/// factor on messages and — the point of batching — by running in
/// `O(log N + c)` rounds instead of `c·O(log N)`. Measurements sit at
/// roughly half this bound (`tests/message_bounds.rs` pins both sides).
pub fn kselect_up_msgs_bound(count: u64, n_bound: u64) -> f64 {
    assert!(count >= 1 && n_bound >= 1);
    let n = n_bound as f64;
    let c = count as f64;
    2.0 * c * ((n / c).log2().max(0.0) + 1.0) + 2.0 * n.log2() + 1.0
}

/// ε-band charging (follow-up paper, arXiv 1601.04448): number of
/// successful midpoint halvings an epoch can see before its surviving gap
/// certificate has shrunk to ≤ ε — `⌈log₂(Δ/ε)⌉` for `Δ > ε ≥ 1`, zero
/// once `ε ≥ Δ`. From that point on, *every* boundary crossing of width
/// ≤ ε is absorbed as a band hit (one broadcast, `RunMetrics::band_hits`)
/// where the exact rule fires `FILTERRESET` — so the band phase of an
/// epoch is reached after `O(log(Δ/ε))` updates and then pays O(1) per
/// crossing. `ε = 0` is exact mode (the band never engages), hence the
/// assert.
pub fn band_halvings_bound(delta: u64, eps: u64) -> f64 {
    assert!(eps >= 1, "ε = 0 is exact mode: the band never engages");
    if delta <= eps {
        0.0
    } else {
        ((delta as f64) / (eps as f64)).log2().ceil()
    }
}

/// Messages the exact rule pays where one ε-band hit pays a single
/// broadcast: the batched `FILTERRESET` cost bound — the k-select
/// up-message bound ([`kselect_up_msgs_bound`] with `c = k + 1`) plus one
/// broadcast per reset round (`⌈log₂(n/(k+1))⌉ + k + 3`, the round bound
/// pinned by `crates/core/tests/reset_rounds.rs`). The per-hit competitive
/// advantage of approximate mode on an oscillation trace is this quantity
/// over 1; `tests/competitive_bounds.rs` pins the measured ratio against
/// it.
pub fn band_hit_savings_bound(k: u64, n: u64) -> f64 {
    assert!(k >= 1 && n > k);
    let rounds = topk_net::rng::log2_ceil(n / (k + 1)) as f64 + k as f64 + 3.0;
    kselect_up_msgs_bound(k + 1, n) + rounds
}

/// `H_n`, the n-th harmonic number — the expected number of left-to-right
/// maxima of a uniformly random permutation, i.e. the expected up-message
/// count of the deterministic sequential baseline (Theorem 4.3's `Θ(log n)`
/// BST path argument).
pub fn harmonic(n: u64) -> f64 {
    // Exact summation below the asymptotic crossover, Euler–Maclaurin above.
    if n == 0 {
        return 0.0;
    }
    if n <= 1_000_000 {
        (1..=n).map(|i| 1.0 / i as f64).sum()
    } else {
        const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
        let nf = n as f64;
        nf.ln() + EULER_MASCHERONI + 1.0 / (2.0 * nf) - 1.0 / (12.0 * nf * nf)
    }
}

/// Sum of the Lemma 4.1 per-rank bounds — an alternative (slightly tighter
/// for small `N`) upper bound on `E[total up-messages]` than
/// [`expected_up_msgs_bound`].
pub fn lemma41_total_bound(participants: u64, n_bound: u64) -> f64 {
    (1..=participants)
        .map(|i| lemma41_send_probability_bound(i, n_bound))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_bound_values() {
        assert!((expected_up_msgs_bound(1) - 1.0).abs() < 1e-12);
        assert!((expected_up_msgs_bound(2) - 3.0).abs() < 1e-12);
        assert!((expected_up_msgs_bound(1024) - 21.0).abs() < 1e-12);
    }

    #[test]
    fn lemma41_is_a_probability_and_decreasing_in_rank() {
        let n = 256;
        let mut prev = f64::INFINITY;
        for i in [1u64, 2, 4, 16, 64, 256] {
            let p = lemma41_send_probability_bound(i, n);
            assert!(p > 0.0 && p <= 1.0, "p={p}");
            assert!(p <= prev + 1e-12, "bound must not increase with rank");
            prev = p;
        }
        // The maximum holder sends with constant-ish probability mass; deep
        // ranks almost never send.
        assert!(lemma41_send_probability_bound(256, n) < 0.2);
    }

    #[test]
    fn band_halvings_bound_tracks_delta_over_eps() {
        assert_eq!(band_halvings_bound(16, 16), 0.0);
        assert_eq!(band_halvings_bound(8, 16), 0.0);
        assert_eq!(band_halvings_bound(16, 1), 4.0);
        assert_eq!(band_halvings_bound(1024, 4), 8.0);
        // Monotone: widening the band never needs more halvings.
        let mut prev = f64::INFINITY;
        for eps in [1u64, 2, 4, 8, 64, 1024] {
            let h = band_halvings_bound(1 << 20, eps);
            assert!(h <= prev, "eps={eps}");
            prev = h;
        }
    }

    #[test]
    fn band_hit_savings_dominate_a_single_broadcast() {
        // The headline pin (≥ 10× fewer messages on the oscillation
        // workload) is conservative against the theory: already at modest
        // sizes the exact rule pays well over 10 messages per crossing
        // where the band pays one.
        for (k, n) in [(1u64, 64u64), (2, 128), (4, 1024)] {
            let s = band_hit_savings_bound(k, n);
            assert!(s >= 10.0, "k={k} n={n}: {s}");
        }
        // And it grows with both k and log n.
        assert!(band_hit_savings_bound(4, 1024) > band_hit_savings_bound(1, 64));
    }

    #[test]
    fn harmonic_matches_known_values() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(10) - 2.928_968_253_968_254).abs() < 1e-9);
        // Asymptotic branch continuity.
        let exact = (1..=1_000_000u64).map(|i| 1.0 / i as f64).sum::<f64>();
        assert!((harmonic(1_000_000) - exact).abs() < 1e-9);
        let big = harmonic(10_000_000);
        let approx = (10_000_000f64).ln() + 0.577_215_664_901_532_9;
        assert!((big - approx).abs() < 1e-6);
    }

    #[test]
    fn lemma_total_is_o_log_n() {
        for exp in [4u32, 8, 12, 16] {
            let n = 1u64 << exp;
            let total = lemma41_total_bound(n, n);
            let thm = expected_up_msgs_bound(n);
            // The summed lemma bound is within a constant of the theorem
            // bound (the paper derives 2·logN + 1 from exactly this sum).
            assert!(total <= thm + 1.0, "n={n}: {total} vs {thm}");
        }
    }
}
