//! Fire-round calendar — the one-draw schedule of the sampling protocols.
//!
//! Algorithm 2's participant flips a `2^r/N` coin in every round `r` until
//! it sends or deactivates, and *never acts again after sending* (§4). Its
//! observable behaviour is therefore fully determined by a single quantity,
//! the **first-send round**
//!
//! ```text
//! P(r* = r) = p_r · Π_{j<r} (1 − p_j),   p_j = min(1, 2^j / N),
//! ```
//!
//! which is a fixed distribution of the protocol bound `N` alone. A
//! participant can thus sample `r*` **once when the episode starts**
//! (inverse-CDF, one uniform draw) and tell the runtime exactly when it
//! will speak — the "know in advance when a node sends" discipline that the
//! top-k structures of Biermeier et al. (arXiv:1709.07259) use for
//! communication, applied here to compute time: a protocol round needs to
//! visit only that round's scheduled firers, not every active participant.
//!
//! Deactivation stays lazy: announcements a scheduled participant skipped
//! are applied when it is next polled (at `r*`, or earlier in a full-fanout
//! round). Since a dominating announcement only ever *clears* the send —
//! the per-round coins are independent of the announcement history — firing
//! iff `r* <` (the round the deactivating announcement would have been
//! applied) is observably identical to flipping the coins round by round.
//!
//! # Exactness
//!
//! The CDF is precomputed in 64-bit fixed point (survival carried in
//! 128-bit intermediates), so each round probability is honoured to within
//! `2⁻⁶⁴` absolute rounding per round — ~`2⁻⁶⁰` over a full 20-round
//! schedule, astronomically below what any statistical pin can resolve
//! (`tests/message_bounds.rs` averages hundreds of runs with ~2×
//! headroom). The structural guarantees are exact: `r*` is always
//! `≤ last_round()`, so the final round still sends with probability 1 and
//! the Las Vegas exactness of Theorem 4.1/4.2 and the k-select sweep is
//! untouched. Bounds of `N = 1` (probability-1 round 0) sample without
//! consuming randomness at all.

use rand::{Rng, RngCore};

use topk_net::rng::log2_ceil;

/// Precomputed first-send-round distribution for protocol bound `N` —
/// build once per `(protocol, N)`, share across all participants (the
/// monitoring layer keeps the three relevant instances in its shared
/// node-parameter block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FireDist {
    /// `cdf[r] = ⌊P(r* ≤ r) · 2⁶⁴⌋` for `r < last`; the final round is
    /// implicit (`r* = last` whenever the draw clears every entry), which
    /// is what makes the probability-1 round structural rather than
    /// numerical. Empty iff `last == 0` (bound 1): no draw needed.
    cdf: Vec<u64>,
    last: u32,
    n_bound: u64,
}

impl FireDist {
    /// The schedule for participant bound `n_bound ≥ 1` (Algorithm 2 runs
    /// rounds `0..=⌈log₂ n_bound⌉`; k-select callers pass
    /// [`crate::kselect::sampling_bound`]).
    pub fn for_bound(n_bound: u64) -> Self {
        assert!(n_bound >= 1, "protocol bound must be positive");
        let last = log2_ceil(n_bound);
        let one = 1u128 << 64;
        let mut survival = one; // Π_{j≤r} (1 − p_j), Q0.64
        let mut cdf = Vec::with_capacity(last as usize);
        for r in 0..last {
            // r < last ⇒ 2^r < n_bound, so the factor is in (0, 1).
            let miss = n_bound - (1u64 << r);
            survival = survival * miss as u128 / n_bound as u128;
            cdf.push((one - survival).min(u64::MAX as u128) as u64);
        }
        FireDist { cdf, last, n_bound }
    }

    /// Index of the final round (send probability 1); `r*` never exceeds it.
    #[inline]
    pub fn last_round(&self) -> u32 {
        self.last
    }

    /// The bound this distribution was built for.
    #[inline]
    pub fn n_bound(&self) -> u64 {
        self.n_bound
    }

    /// Sample the first-send round: one uniform draw, zero draws when the
    /// schedule is a single probability-1 round (`n_bound = 1`).
    ///
    /// The lookup is a branchless linear scan (`r*` = number of CDF entries
    /// ≤ the draw): the table has at most `⌈log₂N⌉ ≤ 64` cache-resident
    /// entries and the draw is uniform, so a binary search would mispredict
    /// on nearly every comparison — measurable when an episode start
    /// fans out to 10⁶ participants at once.
    #[inline]
    pub fn sample(&self, rng: &mut impl RngCore) -> u32 {
        if self.cdf.is_empty() {
            return 0;
        }
        let u: u64 = rng.next_u64();
        // First r with u < cdf[r]; all entries cleared ⇒ the final round.
        self.cdf.iter().map(|&c| (c <= u) as u32).sum()
    }

    /// Exact per-round probabilities of the underlying coin chain, in `f64`
    /// (reference for tests and analysis — sampling never touches floats).
    pub fn reference_pmf(&self) -> Vec<f64> {
        let n = self.n_bound as f64;
        let mut pmf = Vec::with_capacity(self.last as usize + 1);
        let mut survival = 1.0f64;
        for r in 0..=self.last {
            let p = ((1u64 << r.min(63)) as f64 / n).min(1.0);
            pmf.push(survival * p);
            survival *= 1.0 - p;
        }
        pmf
    }
}

/// Simulate the per-round coin chain with [`bernoulli_pow2`] draws — the
/// pre-calendar sampling loop, kept as the reference implementation the
/// one-draw schedule is tested against.
///
/// [`bernoulli_pow2`]: topk_net::rng::bernoulli_pow2
pub fn chain_first_send_round(n_bound: u64, rng: &mut impl Rng) -> u32 {
    let last = log2_ceil(n_bound);
    for r in 0..last {
        if topk_net::rng::bernoulli_pow2(rng, r, n_bound) {
            return r;
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_net::rng::{substream_rng, CounterRng};

    #[test]
    fn bound_one_samples_round_zero_without_drawing() {
        let dist = FireDist::for_bound(1);
        assert_eq!(dist.last_round(), 0);
        let mut rng = CounterRng::substream(1, 1);
        for _ in 0..32 {
            assert_eq!(dist.sample(&mut rng), 0);
        }
        assert_eq!(rng.draws(), 0, "probability-1 schedules must not draw");
    }

    #[test]
    fn sample_always_within_schedule() {
        for n in [1u64, 2, 3, 7, 8, 100, 1 << 17] {
            let dist = FireDist::for_bound(n);
            let mut rng = substream_rng(5, n);
            for _ in 0..200 {
                assert!(dist.sample(&mut rng) <= dist.last_round(), "n={n}");
            }
        }
    }

    #[test]
    fn cdf_is_monotone_and_ends_below_one() {
        for n in [2u64, 3, 37, 1024, (1 << 20) - 3] {
            let dist = FireDist::for_bound(n);
            assert!(dist.cdf.windows(2).all(|w| w[0] <= w[1]), "n={n}");
            assert_eq!(dist.cdf.len() as u32, dist.last_round());
        }
    }

    /// The one-draw inverse CDF matches the per-round Bernoulli chain to
    /// statistical accuracy on every round of the schedule.
    #[test]
    fn one_draw_schedule_matches_coin_chain_distribution() {
        for n in [3u64, 8, 37, 256] {
            let dist = FireDist::for_bound(n);
            let pmf = dist.reference_pmf();
            assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);

            let trials = 60_000u32;
            let mut sched_counts = vec![0u32; pmf.len()];
            let mut chain_counts = vec![0u32; pmf.len()];
            let mut rng_s = substream_rng(7, n);
            let mut rng_c = substream_rng(8, n);
            for _ in 0..trials {
                sched_counts[dist.sample(&mut rng_s) as usize] += 1;
                chain_counts[chain_first_send_round(n, &mut rng_c) as usize] += 1;
            }
            for (r, &p) in pmf.iter().enumerate() {
                let got = sched_counts[r] as f64 / trials as f64;
                let chain = chain_counts[r] as f64 / trials as f64;
                // Binomial std dev at 60k trials is ≤ ~0.002; allow 4σ-ish.
                let tol = 0.009;
                assert!(
                    (got - p).abs() < tol,
                    "n={n} r={r}: schedule freq {got:.4} vs exact {p:.4}"
                );
                assert!(
                    (got - chain).abs() < 2.0 * tol,
                    "n={n} r={r}: schedule freq {got:.4} vs chain {chain:.4}"
                );
            }
        }
    }

    /// The expected first-send round is dominated by the late rounds (the
    /// survival product stays near 1 until `2^r ≈ N`) — a sanity pin that
    /// the distribution is the protocol's, not, say, a geometric.
    #[test]
    fn mass_concentrates_near_the_final_rounds() {
        let dist = FireDist::for_bound(1 << 16);
        let pmf = dist.reference_pmf();
        let tail: f64 = pmf[pmf.len() - 4..].iter().sum();
        assert!(
            tail > 0.8,
            "last 4 of {} rounds should carry most mass, got {tail:.3}",
            pmf.len()
        );
    }
}
