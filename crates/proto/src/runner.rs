//! Standalone execution of one protocol instance at a fixed time — the
//! setting of §4 of the paper (values do not change during a run).
//!
//! This is the harness behind experiments E1–E3/E11: it executes
//! MAXIMUMPROTOCOL / MINIMUMPROTOCOL over a set of `(id, value)` pairs,
//! charges messages to a [`CommLedger`] and reports per-run statistics.
//! Within Algorithm 1 the same state machines are driven by the monitoring
//! coordinator instead (see `topk-core`).

use rand_chacha::ChaCha12Rng;

use topk_net::id::{NodeId, Value};
use topk_net::ledger::{ChannelKind, CommLedger};
use topk_net::rng::{derive_seed, log2_ceil, substream_rng};
use topk_net::wire::{Report, WireSize};

use crate::extremum::{
    Aggregator, BroadcastPolicy, MaxOrder, MinOrder, Participant, ProtocolOrder,
};
use crate::kselect::KSelectAggregator;
use crate::schedule::FireDist;

/// Outcome of one standalone protocol execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolOutcome {
    /// The exact extremum (None iff the participant set was empty).
    pub winner: Option<Report>,
    /// Node→coordinator messages (the Theorem 4.2 quantity).
    pub up_msgs: u64,
    /// Coordinator broadcasts emitted during the run.
    pub bcast_msgs: u64,
    /// Rounds actually executed (early exit once all participants settled).
    pub rounds_run: u32,
}

/// Execute one extremum protocol over `entries` with participant bound
/// `n_bound ≥ entries.len()`.
///
/// Randomness: participant `id` draws from the substream
/// `derive_seed(master_seed, protocol_tag) ⊕ id`, so repeated runs with
/// distinct tags are independent yet fully reproducible.
pub fn run_extremum<O: ProtocolOrder>(
    entries: &[(NodeId, Value)],
    n_bound: u64,
    policy: BroadcastPolicy,
    master_seed: u64,
    protocol_tag: u64,
    ledger: &mut CommLedger,
) -> ProtocolOutcome {
    assert!(
        n_bound >= entries.len() as u64,
        "N={n_bound} must bound the participant count {}",
        entries.len()
    );
    let run_seed = derive_seed(master_seed, protocol_tag);
    let mut parts: Vec<(Participant<O>, ChaCha12Rng)> = entries
        .iter()
        .map(|&(id, v)| {
            (
                Participant::<O>::new(id, v, n_bound),
                substream_rng(run_seed, id.0 as u64),
            )
        })
        .collect();
    let mut agg: Aggregator<O> = Aggregator::new(n_bound.max(1));

    let mut up_msgs = 0u64;
    let mut bcast_msgs = 0u64;
    let mut rounds_run = 0u32;
    let last = log2_ceil(n_bound.max(1));
    let mut announced: Option<Report> = None;

    for r in 0..=last {
        if parts.iter().all(|(p, _)| !p.is_active()) {
            break; // remaining rounds are silent — free in the model
        }
        rounds_run += 1;
        for (p, rng) in parts.iter_mut() {
            if let Some(report) = p.round(r, announced, rng) {
                ledger.count(ChannelKind::Up, report.wire_bits());
                up_msgs += 1;
                agg.absorb(report);
            }
        }
        // Broadcast between rounds (not after the final one — the result
        // consumer is the coordinator itself in this standalone setting).
        if r < last {
            if let Some(best) = agg.pending_announcement(policy) {
                ledger.count(ChannelKind::Broadcast, best.wire_bits());
                bcast_msgs += 1;
                agg.mark_announced();
                announced = Some(best);
            }
        }
    }

    ProtocolOutcome {
        winner: agg.result(),
        up_msgs,
        bcast_msgs,
        rounds_run,
    }
}

/// Coordinator-side sink of the shared calendar drive
/// ([`drive_scheduled`]): absorb fired reports; surface (and mark) the
/// round's pending announcement — the running extremum for a maximum
/// search, the `c`-th-best bar for a k-select sweep.
trait ScheduledSink {
    fn absorb_report(&mut self, report: Report);
    fn take_pending(&mut self, policy: BroadcastPolicy) -> Option<Report>;
}

impl<O: ProtocolOrder> ScheduledSink for Aggregator<O> {
    fn absorb_report(&mut self, report: Report) {
        self.absorb(report);
    }
    fn take_pending(&mut self, policy: BroadcastPolicy) -> Option<Report> {
        let best = self.pending_announcement(policy)?;
        self.mark_announced();
        Some(best)
    }
}

impl<O: ProtocolOrder> ScheduledSink for KSelectAggregator<O> {
    fn absorb_report(&mut self, report: Report) {
        self.absorb(report);
    }
    fn take_pending(&mut self, policy: BroadcastPolicy) -> Option<Report> {
        let bar = self.pending_bar(policy)?;
        self.mark_announced();
        Some(bar)
    }
}

/// The calendar drive shared by [`run_max_scheduled`] and
/// [`run_kselect_scheduled`]: every participant samples its first-send
/// round **once** ([`Participant::schedule`], one uniform draw) at bound
/// `part_bound`, rounds are buckets of scheduled firers, and skipped
/// announcements are applied lazily at fire time
/// ([`Participant::apply_announcement`]). Returns
/// `(up_msgs, bcast_msgs, rounds_run)`.
fn drive_scheduled<O: ProtocolOrder>(
    entries: &[(NodeId, Value)],
    part_bound: u64,
    agg: &mut impl ScheduledSink,
    policy: BroadcastPolicy,
    run_seed: u64,
    ledger: &mut CommLedger,
) -> (u64, u64, u32) {
    let dist = FireDist::for_bound(part_bound);
    let last = dist.last_round();
    // Bucket participants by their scheduled round — the calendar.
    let mut calendar: Vec<Vec<Participant<O>>> = (0..=last).map(|_| Vec::new()).collect();
    for &(id, v) in entries {
        let mut p = Participant::<O>::new(id, v, part_bound);
        let mut rng = substream_rng(run_seed, id.0 as u64);
        let r = p.schedule(&dist, &mut rng);
        calendar[r as usize].push(p);
    }

    let mut up_msgs = 0u64;
    let mut bcast_msgs = 0u64;
    let mut rounds_run = 0u32;
    let mut announced: Option<Report> = None;
    let mut remaining = entries.len();

    for r in 0..=last {
        if remaining == 0 {
            break; // every participant settled — remaining rounds are silent
        }
        rounds_run += 1;
        for p in &mut calendar[r as usize] {
            remaining -= 1;
            if let Some(best) = announced {
                p.apply_announcement(best);
            }
            if let Some(report) = p.fire() {
                ledger.count(ChannelKind::Up, report.wire_bits());
                up_msgs += 1;
                agg.absorb_report(report);
            }
        }
        if r < last {
            if let Some(best) = agg.take_pending(policy) {
                ledger.count(ChannelKind::Broadcast, best.wire_bits());
                bcast_msgs += 1;
                announced = Some(best);
            }
        }
    }
    (up_msgs, bcast_msgs, rounds_run)
}

/// Calendar drive of one extremum protocol — distributionally identical to
/// [`run_extremum`] (same winner law, same Theorem 4.2 message bound,
/// pinned statistically by `tests/message_bounds.rs`) but each participant
/// is touched O(1) times total instead of once per round.
pub fn run_extremum_scheduled<O: ProtocolOrder>(
    entries: &[(NodeId, Value)],
    n_bound: u64,
    policy: BroadcastPolicy,
    master_seed: u64,
    protocol_tag: u64,
    ledger: &mut CommLedger,
) -> ProtocolOutcome {
    assert!(
        n_bound >= entries.len() as u64,
        "N={n_bound} must bound the participant count {}",
        entries.len()
    );
    let run_seed = derive_seed(master_seed, protocol_tag);
    let mut agg: Aggregator<O> = Aggregator::new(n_bound.max(1));
    let (up_msgs, bcast_msgs, rounds_run) =
        drive_scheduled::<O>(entries, n_bound.max(1), &mut agg, policy, run_seed, ledger);
    ProtocolOutcome {
        winner: agg.result(),
        up_msgs,
        bcast_msgs,
        rounds_run,
    }
}

/// [`run_max`] on the fire-round calendar (see [`run_extremum_scheduled`]).
pub fn run_max_scheduled(
    entries: &[(NodeId, Value)],
    n_bound: u64,
    policy: BroadcastPolicy,
    master_seed: u64,
    protocol_tag: u64,
    ledger: &mut CommLedger,
) -> ProtocolOutcome {
    run_extremum_scheduled::<MaxOrder>(entries, n_bound, policy, master_seed, protocol_tag, ledger)
}

/// MAXIMUMPROTOCOL over `entries` (§4, Algorithm 2).
pub fn run_max(
    entries: &[(NodeId, Value)],
    n_bound: u64,
    policy: BroadcastPolicy,
    master_seed: u64,
    protocol_tag: u64,
    ledger: &mut CommLedger,
) -> ProtocolOutcome {
    run_extremum::<MaxOrder>(entries, n_bound, policy, master_seed, protocol_tag, ledger)
}

/// MINIMUMPROTOCOL over `entries` (the min analogue used by Algorithm 1).
pub fn run_min(
    entries: &[(NodeId, Value)],
    n_bound: u64,
    policy: BroadcastPolicy,
    master_seed: u64,
    protocol_tag: u64,
    ledger: &mut CommLedger,
) -> ProtocolOutcome {
    run_extremum::<MinOrder>(entries, n_bound, policy, master_seed, protocol_tag, ledger)
}

/// Iterated top-k selection: `k` successive MAXIMUMPROTOCOL(n_bound) runs,
/// each excluding the previous winners — the §2.1 "first approach" and the
/// engine inside FILTERRESET. When `announce_winners` is set each iteration
/// ends with a winner broadcast (1 message), which the monitoring algorithm
/// needs so nodes learn their membership.
///
/// Returns winners best-first; fewer than `k` if `entries` is smaller.
#[allow(clippy::too_many_arguments)] // protocol wiring: every knob is load-bearing
pub fn select_topk(
    entries: &[(NodeId, Value)],
    k: usize,
    n_bound: u64,
    policy: BroadcastPolicy,
    announce_winners: bool,
    master_seed: u64,
    protocol_tag: u64,
    ledger: &mut CommLedger,
) -> Vec<Report> {
    let mut remaining: Vec<(NodeId, Value)> = entries.to_vec();
    let mut winners = Vec::with_capacity(k);
    for i in 0..k.min(entries.len()) {
        let out = run_max(
            &remaining,
            n_bound,
            policy,
            master_seed,
            derive_seed(protocol_tag, i as u64),
            ledger,
        );
        let Some(w) = out.winner else { break };
        if announce_winners {
            ledger.count(ChannelKind::Broadcast, w.wire_bits());
        }
        winners.push(w);
        remaining.retain(|&(id, _)| id != w.id);
    }
    winners
}

/// Outcome of one standalone batched k-select execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KSelectOutcome {
    /// The exact top-`count` values, best-first (shorter iff fewer entries).
    pub winners: Vec<Report>,
    /// Node→coordinator messages (the `Θ(c·log(N/c) + log N)` quantity —
    /// see `analysis::kselect_up_msgs_bound`).
    pub up_msgs: u64,
    /// Coordinator broadcasts emitted during the run (bar announcements,
    /// plus one winner announcement per selected value when
    /// `announce_winners` is set).
    pub bcast_msgs: u64,
    /// Participant rounds actually executed (early exit once settled).
    pub rounds_run: u32,
}

/// Batched top-`count` selection over `entries` in **one** protocol sweep —
/// the engine behind the batched FILTERRESET (see [`KSelectAggregator`]).
/// Participants are plain max-protocol participants; the coordinator
/// broadcasts the running `count`-th best as the deactivation bar.
///
/// With `announce_winners` each selected value is additionally charged as
/// one winner broadcast (what the monitoring algorithm needs so nodes learn
/// their membership), making totals comparable with [`select_topk`].
#[allow(clippy::too_many_arguments)] // protocol wiring: every knob is load-bearing
pub fn run_kselect(
    entries: &[(NodeId, Value)],
    count: usize,
    n_bound: u64,
    policy: BroadcastPolicy,
    announce_winners: bool,
    master_seed: u64,
    protocol_tag: u64,
    ledger: &mut CommLedger,
) -> KSelectOutcome {
    assert!(
        n_bound >= entries.len() as u64,
        "N={n_bound} must bound the participant count {}",
        entries.len()
    );
    let run_seed = derive_seed(master_seed, protocol_tag);
    // The k-select sampling schedule: start at probability ≈ count/n so the
    // expected round-0 report count matches the selection size.
    let bound = crate::kselect::sampling_bound(count, n_bound.max(1));
    let mut parts: Vec<(Participant<MaxOrder>, ChaCha12Rng)> = entries
        .iter()
        .map(|&(id, v)| {
            (
                Participant::<MaxOrder>::new(id, v, bound),
                substream_rng(run_seed, id.0 as u64),
            )
        })
        .collect();
    let mut agg: KSelectAggregator<MaxOrder> = KSelectAggregator::new(count, n_bound.max(1));

    let mut up_msgs = 0u64;
    let mut bcast_msgs = 0u64;
    let mut rounds_run = 0u32;
    let last = log2_ceil(bound);
    let mut announced: Option<Report> = None;

    for r in 0..=last {
        if parts.iter().all(|(p, _)| !p.is_active()) {
            break; // remaining rounds are silent — free in the model
        }
        rounds_run += 1;
        for (p, rng) in parts.iter_mut() {
            // The bar plays the announced maximum's role: a participant
            // that cannot beat it withdraws (count nodes are better).
            if let Some(report) = p.round(r, announced, rng) {
                ledger.count(ChannelKind::Up, report.wire_bits());
                up_msgs += 1;
                agg.absorb(report);
            }
        }
        if r < last {
            if let Some(bar) = agg.pending_bar(policy) {
                ledger.count(ChannelKind::Broadcast, bar.wire_bits());
                bcast_msgs += 1;
                agg.mark_announced();
                announced = Some(bar);
            }
        }
    }

    if announce_winners {
        for w in agg.winners() {
            ledger.count(ChannelKind::Broadcast, w.wire_bits());
            bcast_msgs += 1;
        }
    }

    KSelectOutcome {
        winners: agg.winners().to_vec(),
        up_msgs,
        bcast_msgs,
        rounds_run,
    }
}

/// [`run_kselect`] on the fire-round calendar: one schedule draw per
/// participant, per-round buckets, lazy bar application at fire time
/// (the `drive_scheduled` loop shared with [`run_max_scheduled`]). Same
/// exact winners (Las Vegas) and the same
/// `E[#up] ≤ 2c·(log₂(N/c)+1) + 2·log₂N + 1` law as the per-round sweep.
#[allow(clippy::too_many_arguments)] // protocol wiring: every knob is load-bearing
pub fn run_kselect_scheduled(
    entries: &[(NodeId, Value)],
    count: usize,
    n_bound: u64,
    policy: BroadcastPolicy,
    announce_winners: bool,
    master_seed: u64,
    protocol_tag: u64,
    ledger: &mut CommLedger,
) -> KSelectOutcome {
    assert!(
        n_bound >= entries.len() as u64,
        "N={n_bound} must bound the participant count {}",
        entries.len()
    );
    let run_seed = derive_seed(master_seed, protocol_tag);
    let bound = crate::kselect::sampling_bound(count, n_bound.max(1));
    let mut agg: KSelectAggregator<MaxOrder> = KSelectAggregator::new(count, n_bound.max(1));
    let (up_msgs, mut bcast_msgs, rounds_run) =
        drive_scheduled::<MaxOrder>(entries, bound, &mut agg, policy, run_seed, ledger);

    if announce_winners {
        for w in agg.winners() {
            ledger.count(ChannelKind::Broadcast, w.wire_bits());
            bcast_msgs += 1;
        }
    }

    KSelectOutcome {
        winners: agg.winners().to_vec(),
        up_msgs,
        bcast_msgs,
        rounds_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(values: &[Value]) -> Vec<(NodeId, Value)> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (NodeId(i as u32), v))
            .collect()
    }

    #[test]
    fn max_is_exact_las_vegas() {
        // Las Vegas: the answer must be exact for every seed.
        let vals: Vec<Value> = vec![17, 3, 99, 42, 8, 77, 99, 5];
        let es = entries(&vals);
        for seed in 0..200 {
            let mut ledger = CommLedger::new();
            let out = run_max(
                &es,
                es.len() as u64,
                BroadcastPolicy::OnChange,
                seed,
                0,
                &mut ledger,
            );
            let w = out.winner.unwrap();
            assert_eq!(w.value, 99);
            assert_eq!(w.id, NodeId(2), "tie at 99 must go to the lower id");
            assert_eq!(ledger.up(), out.up_msgs);
            assert!(out.up_msgs >= 1);
        }
    }

    #[test]
    fn min_is_exact_las_vegas() {
        let vals: Vec<Value> = vec![17, 3, 99, 42, 3, 77];
        let es = entries(&vals);
        for seed in 0..200 {
            let mut ledger = CommLedger::new();
            let out = run_min(&es, 8, BroadcastPolicy::OnChange, seed, 1, &mut ledger);
            let w = out.winner.unwrap();
            assert_eq!(w.value, 3);
            assert_eq!(w.id, NodeId(1), "tie at 3 must go to the lower id");
        }
    }

    #[test]
    fn empty_participant_set_yields_none() {
        let mut ledger = CommLedger::new();
        let out = run_max(&[], 4, BroadcastPolicy::OnChange, 0, 0, &mut ledger);
        assert_eq!(out.winner, None);
        assert_eq!(out.up_msgs, 0);
        assert_eq!(ledger.total(), 0);
    }

    #[test]
    fn single_participant_sends_exactly_once() {
        for seed in 0..50 {
            let mut ledger = CommLedger::new();
            let out = run_max(
                &[(NodeId(7), 123)],
                1,
                BroadcastPolicy::OnChange,
                seed,
                0,
                &mut ledger,
            );
            assert_eq!(out.winner.unwrap().value, 123);
            assert_eq!(out.up_msgs, 1, "N=1 ⇒ round 0 has probability 1");
        }
    }

    #[test]
    fn bound_larger_than_set_is_allowed() {
        let vals: Vec<Value> = (0..10).collect();
        let es = entries(&vals);
        let mut ledger = CommLedger::new();
        let out = run_max(&es, 1024, BroadcastPolicy::OnChange, 3, 0, &mut ledger);
        assert_eq!(out.winner.unwrap().value, 9);
    }

    #[test]
    #[should_panic(expected = "must bound the participant count")]
    fn undersized_bound_panics() {
        let es = entries(&[1, 2, 3]);
        let mut ledger = CommLedger::new();
        let _ = run_max(&es, 2, BroadcastPolicy::OnChange, 0, 0, &mut ledger);
    }

    #[test]
    fn every_round_policy_broadcasts_at_least_on_change() {
        let vals: Vec<Value> = (0..64).collect();
        let es = entries(&vals);
        let mut l1 = CommLedger::new();
        let mut l2 = CommLedger::new();
        let a = run_max(&es, 64, BroadcastPolicy::OnChange, 11, 0, &mut l1);
        let b = run_max(&es, 64, BroadcastPolicy::EveryRound, 11, 0, &mut l2);
        // Same seed ⇒ same coin flips until histories diverge; the winners
        // must agree regardless.
        assert_eq!(a.winner.unwrap().value, b.winner.unwrap().value);
        assert!(b.bcast_msgs >= a.bcast_msgs);
    }

    #[test]
    fn select_topk_returns_exact_set_in_order() {
        let vals: Vec<Value> = vec![10, 50, 20, 40, 30, 60, 1, 2];
        let es = entries(&vals);
        for seed in 0..50 {
            let mut ledger = CommLedger::new();
            let ws = select_topk(
                &es,
                3,
                8,
                BroadcastPolicy::OnChange,
                true,
                seed,
                7,
                &mut ledger,
            );
            let got: Vec<Value> = ws.iter().map(|w| w.value).collect();
            assert_eq!(got, vec![60, 50, 40]);
            assert!(ledger.broadcast() >= 3, "winner announcements counted");
        }
    }

    #[test]
    fn select_topk_handles_k_larger_than_set() {
        let es = entries(&[5, 1]);
        let mut ledger = CommLedger::new();
        let ws = select_topk(
            &es,
            10,
            4,
            BroadcastPolicy::OnChange,
            false,
            0,
            0,
            &mut ledger,
        );
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].value, 5);
        assert_eq!(ws[1].value, 1);
    }

    #[test]
    fn kselect_matches_iterated_selection_exactly() {
        // Las Vegas: the batched sweep must return the identical top-c set
        // (values, ids, order) as c sequential maximum searches, per seed.
        let vals: Vec<Value> = vec![10, 50, 20, 40, 30, 60, 1, 2, 50, 7];
        let es = entries(&vals);
        for seed in 0..100 {
            let mut l1 = CommLedger::new();
            let mut l2 = CommLedger::new();
            let batched = run_kselect(
                &es,
                4,
                16,
                BroadcastPolicy::OnChange,
                true,
                seed,
                3,
                &mut l1,
            );
            let iterated = select_topk(
                &es,
                4,
                16,
                BroadcastPolicy::OnChange,
                true,
                seed,
                4,
                &mut l2,
            );
            assert_eq!(batched.winners, iterated);
            assert_eq!(l1.up(), batched.up_msgs);
            assert!(
                batched.rounds_run as u64 <= log2_ceil(16) as u64 + 1,
                "one sweep only"
            );
        }
    }

    #[test]
    fn kselect_handles_count_larger_than_set() {
        let es = entries(&[5, 1]);
        let mut ledger = CommLedger::new();
        let out = run_kselect(
            &es,
            10,
            4,
            BroadcastPolicy::OnChange,
            false,
            0,
            0,
            &mut ledger,
        );
        assert_eq!(out.winners.len(), 2);
        assert_eq!(out.winners[0].value, 5);
        assert_eq!(out.winners[1].value, 1);
    }

    #[test]
    fn kselect_empty_set_yields_nothing() {
        let mut ledger = CommLedger::new();
        let out = run_kselect(
            &[],
            3,
            4,
            BroadcastPolicy::OnChange,
            true,
            0,
            0,
            &mut ledger,
        );
        assert!(out.winners.is_empty());
        assert_eq!(ledger.total(), 0);
    }

    #[test]
    fn scheduled_max_is_exact_las_vegas() {
        let vals: Vec<Value> = vec![17, 3, 99, 42, 8, 77, 99, 5];
        let es = entries(&vals);
        for seed in 0..200 {
            let mut ledger = CommLedger::new();
            let out = run_max_scheduled(
                &es,
                es.len() as u64,
                BroadcastPolicy::OnChange,
                seed,
                0,
                &mut ledger,
            );
            let w = out.winner.unwrap();
            assert_eq!(w.value, 99);
            assert_eq!(w.id, NodeId(2), "tie at 99 must go to the lower id");
            assert_eq!(ledger.up(), out.up_msgs);
            assert!(out.up_msgs >= 1);
            assert!(out.rounds_run as u64 <= log2_ceil(es.len() as u64) as u64 + 1);
        }
    }

    #[test]
    fn scheduled_kselect_is_exact_las_vegas() {
        let vals: Vec<Value> = vec![10, 50, 20, 40, 30, 60, 1, 2, 50, 7];
        let es = entries(&vals);
        for seed in 0..100 {
            let mut ledger = CommLedger::new();
            let out = run_kselect_scheduled(
                &es,
                4,
                16,
                BroadcastPolicy::OnChange,
                false,
                seed,
                3,
                &mut ledger,
            );
            let got: Vec<Value> = out.winners.iter().map(|w| w.value).collect();
            assert_eq!(got, vec![60, 50, 50, 40]);
            assert_eq!(out.winners[1].id, NodeId(1), "equal 50s rank by id");
            assert_eq!(out.winners[2].id, NodeId(8));
            assert_eq!(ledger.up(), out.up_msgs);
        }
    }

    #[test]
    fn scheduled_single_participant_sends_exactly_once_with_zero_draws() {
        // n_bound = 1 ⇒ the schedule is the probability-1 round 0; the
        // FireDist consumes no randomness at all (see topk_proto::schedule).
        for seed in 0..50 {
            let mut ledger = CommLedger::new();
            let out = run_max_scheduled(
                &[(NodeId(7), 123)],
                1,
                BroadcastPolicy::OnChange,
                seed,
                0,
                &mut ledger,
            );
            assert_eq!(out.winner.unwrap().value, 123);
            assert_eq!(out.up_msgs, 1);
            assert_eq!(out.rounds_run, 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let vals: Vec<Value> = (0..128).map(|i| (i * 37) % 1000).collect();
        let es = entries(&vals);
        let run = |seed| {
            let mut ledger = CommLedger::new();
            let out = run_max(&es, 128, BroadcastPolicy::OnChange, seed, 5, &mut ledger);
            (out, ledger.snapshot())
        };
        assert_eq!(run(42), run(42));
        // Different seeds virtually always give different message counts for
        // this size; check a few to guard against accidentally shared RNGs.
        let counts: Vec<u64> = (0..8).map(|s| run(s).0.up_msgs).collect();
        assert!(counts.iter().any(|&c| c != counts[0]));
    }
}
