//! # topk-proto — distributed extremum protocols (§4 of Mäcker et al.)
//!
//! The paper's Algorithm 2 — a randomized Las Vegas protocol computing the
//! maximum (or minimum) value held by up to `N` nodes using
//! `E[#messages] ≤ 2·log₂N + 1` — plus the deterministic baselines used in
//! its lower-bound argument, iterated top-k selection, and the closed-form
//! analysis quantities.
//!
//! * [`extremum`] — driver-agnostic participant/aggregator state machines;
//! * [`kselect`] — batched top-`c` selection in one `O(log N + c)`-round
//!   sweep (the engine behind the batched FILTERRESET);
//! * [`runner`] — standalone fixed-time executions with message accounting;
//! * [`baselines`] — sequential threshold probing (Theorem 4.3), poll-all,
//!   bisection;
//! * [`analysis`] — Theorem 4.2 / Lemma 4.1 bounds and harmonic numbers;
//! * [`schedule`] — the fire-round calendar: one-draw sampling of a
//!   participant's first-send round (what lets runtimes visit only that
//!   round's firers instead of polling every active participant);
//! * [`variants`] — ablations of the sampling schedule (why doubling?).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod baselines;
pub mod extremum;
pub mod kselect;
pub mod runner;
pub mod schedule;
pub mod variants;

pub use extremum::{
    Aggregator, BroadcastPolicy, MaxAggregator, MaxOrder, MaxParticipant, MinAggregator, MinOrder,
    MinParticipant, Participant, ProtocolOrder,
};
pub use kselect::{KSelectAggregator, MaxKSelectAggregator};
pub use runner::{
    run_extremum, run_kselect, run_kselect_scheduled, run_max, run_max_scheduled, run_min,
    select_topk, KSelectOutcome, ProtocolOutcome,
};
pub use schedule::FireDist;
pub use variants::{run_max_variant, GrowthSchedule, VariantOutcome};

#[cfg(test)]
mod statistical_tests {
    //! Seeded statistical checks of the §4 theorems. Tolerances are generous
    //! enough to be flake-free while still falsifying an incorrect
    //! implementation.

    use rand::seq::SliceRandom;
    use rand::Rng;

    use topk_net::id::NodeId;
    use topk_net::ledger::CommLedger;
    use topk_net::rng::substream_rng;

    use crate::analysis::expected_up_msgs_bound;
    use crate::extremum::BroadcastPolicy;
    use crate::runner::run_max;

    /// Mean up-message count over `trials` random permutations of `0..n`.
    fn mean_ups(n: usize, trials: u64, seed: u64) -> f64 {
        let mut rng = substream_rng(seed, 99);
        let mut values: Vec<u64> = (0..n as u64).collect();
        let mut total = 0u64;
        for trial in 0..trials {
            values.shuffle(&mut rng);
            let entries: Vec<(NodeId, u64)> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| (NodeId(i as u32), v))
                .collect();
            let mut ledger = CommLedger::new();
            let out = run_max(
                &entries,
                n as u64,
                BroadcastPolicy::OnChange,
                seed,
                trial,
                &mut ledger,
            );
            assert_eq!(out.winner.unwrap().value, n as u64 - 1);
            total += out.up_msgs;
        }
        total as f64 / trials as f64
    }

    #[test]
    fn expected_messages_within_theorem_bound() {
        for exp in [4u32, 6, 8, 10] {
            let n = 1usize << exp;
            let mean = mean_ups(n, 400, 0xfeed + exp as u64);
            let bound = expected_up_msgs_bound(n as u64);
            assert!(
                mean <= bound,
                "n={n}: measured mean {mean:.2} exceeds bound {bound:.2}"
            );
            // And the protocol is not trivially silent: at least one message
            // per run, and growth is logarithmic-ish (well below √n once n
            // is large enough for the asymptotics to bite).
            assert!(mean >= 1.0);
            if n >= 256 {
                assert!(mean <= (n as f64).sqrt());
            }
        }
    }

    #[test]
    fn message_count_scales_logarithmically() {
        let m16 = mean_ups(1 << 4, 300, 1);
        let m64 = mean_ups(1 << 6, 300, 2);
        let m256 = mean_ups(1 << 8, 300, 3);
        // Doubling the exponent should add roughly a constant, not multiply:
        // successive differences stay bounded.
        let d1 = m64 - m16;
        let d2 = m256 - m64;
        assert!(d1.abs() < 6.0 && d2.abs() < 6.0, "d1={d1:.2} d2={d2:.2}");
    }

    #[test]
    fn worst_case_input_still_bounded() {
        // Ascending values maximize survivals (every node beats all earlier
        // reporters): the classic stress input for the protocol.
        let n = 256usize;
        let entries: Vec<(NodeId, u64)> = (0..n).map(|i| (NodeId(i as u32), i as u64)).collect();
        let mut total = 0u64;
        let trials = 300u64;
        for trial in 0..trials {
            let mut ledger = CommLedger::new();
            let out = run_max(
                &entries,
                n as u64,
                BroadcastPolicy::OnChange,
                0xabc,
                trial,
                &mut ledger,
            );
            total += out.up_msgs;
        }
        let mean = total as f64 / trials as f64;
        assert!(
            mean <= expected_up_msgs_bound(n as u64),
            "mean {mean:.2} vs bound {:.2}",
            expected_up_msgs_bound(n as u64)
        );
    }

    #[test]
    fn high_probability_tail_decays() {
        // Theorem 4.2 (whp part): Pr[X > c·logN] should fall fast in c.
        let n = 256usize;
        let entries_base: Vec<u64> = (0..n as u64).collect();
        let mut rng = substream_rng(0x7a11, 0);
        let trials = 2000;
        let logn = (n as f64).log2();
        let mut exceed_3 = 0u32;
        let mut exceed_6 = 0u32;
        let mut values = entries_base.clone();
        for trial in 0..trials {
            values.shuffle(&mut rng);
            let entries: Vec<(NodeId, u64)> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| (NodeId(i as u32), v))
                .collect();
            let mut ledger = CommLedger::new();
            let out = run_max(
                &entries,
                n as u64,
                BroadcastPolicy::OnChange,
                0x7a11,
                trial,
                &mut ledger,
            );
            if out.up_msgs as f64 > 3.0 * logn {
                exceed_3 += 1;
            }
            if out.up_msgs as f64 > 6.0 * logn {
                exceed_6 += 1;
            }
        }
        let p3 = exceed_3 as f64 / trials as f64;
        let p6 = exceed_6 as f64 / trials as f64;
        assert!(p3 < 0.05, "Pr[X > 3 logN] = {p3}");
        assert!(p6 < 0.001, "Pr[X > 6 logN] = {p6}");
    }

    #[test]
    fn random_values_protocol_vs_duplicates() {
        // Heavy duplication must not break exactness.
        let mut rng = substream_rng(5, 5);
        for trial in 0..50u64 {
            let n = rng.gen_range(1..100usize);
            let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..5u64)).collect();
            let entries: Vec<(NodeId, u64)> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| (NodeId(i as u32), v))
                .collect();
            let expected = entries
                .iter()
                .map(|&(id, v)| topk_net::id::RankEntry::new(v, id))
                .max()
                .unwrap();
            let mut ledger = CommLedger::new();
            let out = run_max(
                &entries,
                n as u64,
                BroadcastPolicy::OnChange,
                trial,
                trial,
                &mut ledger,
            );
            let w = out.winner.unwrap();
            assert_eq!((w.value, w.id), (expected.value, expected.id));
        }
    }
}
