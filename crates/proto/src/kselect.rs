//! Batched k-select — all top-`c` values in **one** `O(log n + c)`-round
//! sweep of the Algorithm 2 sampling machinery, instead of `c` sequential
//! maximum searches.
//!
//! Participants run the unchanged MAXIMUMPROTOCOL sampling schedule — in
//! round `r` every still-active participant sends its `(id, value)` with
//! probability `2^r / B` (probability 1 in the final round), so the node
//! side *is* [`Participant`](crate::extremum::Participant) — but invoked
//! at the k-select generalization
//! of the protocol bound: `B = ⌊N/c⌋` ([`sampling_bound`]) instead of `N`.
//! Algorithm 2 starts at `1/N` so the expected first-round report count
//! matches the *one* value it seeks; selecting `c` values wants `c`
//! expected first-round reports, i.e. start probability `c/N`. The final
//! round still sends with probability 1, so exactness is untouched, and
//! the sweep shortens to `⌈log₂(N/c)⌉ + 1` participant rounds.
//!
//! The coordinator differs from the maximum search: instead of the running
//! maximum it keeps the running top-`c` candidate set and announces the
//! current **`c`-th best** as the deactivation bar. A participant that
//! cannot beat the bar knows `c` distinct nodes hold better values, so it
//! can never be among the top `c` and withdraws — the same comparison the
//! max-protocol participant already performs against the running maximum.
//!
//! Correctness (Las Vegas, like Algorithm 2): a bar only ever exists once
//! `c` reports were received, every report is a true node value, and the
//! final round sends with probability 1 — so after `⌈log₂(N/c)⌉ + 1`
//! rounds every node not provably outside the top `c` has reported, and
//! [`KSelectAggregator::winners`] is the exact top-`c` (ties by node id,
//! total on arbitrary inputs). Only the message count is random:
//! `E[#up-messages] ≤ 2c·(log₂(N/c) + 1) + 2·log₂N + 1` — every winner
//! sends exactly once, and the rank-`i` loser sends with probability
//! ≈ `min(1, 2c/i)` before the bar catches it (see
//! `analysis::kselect_up_msgs_bound` for the derivation and why the
//! `log(N/c)` factor is inherent to bar-deactivated uniform doubling;
//! pinned statistically by `tests/message_bounds.rs`). This is the batching
//! idea of the communication-efficient top-k data structures of Biermeier
//! et al. (arXiv:1709.07259) applied to the paper's sampling protocol.
//!
//! Inside Algorithm 1 this replaces FILTERRESET's `k+1` sequential
//! MAXIMUMPROTOCOL(n) iterations (`(k+1)·(⌈log₂n⌉+1)` rounds,
//! `(k+1)·(2·log₂n + 1)` expected messages) with one
//! `⌈log₂(n/(k+1))⌉ + k + O(1)`-round protocol — see `topk-core`'s
//! coordinator.

use std::marker::PhantomData;

use topk_net::wire::Report;

use crate::extremum::{BroadcastPolicy, MaxOrder, ProtocolOrder};

/// The sampling-protocol bound for selecting the top `count` among up to
/// `n_bound` participants: `max(1, ⌊n_bound/count⌋)`. Build each
/// [`Participant`](crate::extremum::Participant) with this bound so the
/// round-`r` send probability is `≈ count·2^r / n_bound` — `count` expected
/// reports in round 0, doubling every round, probability 1 at round
/// [`KSelectAggregator::last_round`]. At `count = 1` this is Algorithm 2's
/// own `1/N` schedule.
pub fn sampling_bound(count: usize, n_bound: u64) -> u64 {
    assert!(count >= 1 && n_bound >= 1);
    (n_bound / count as u64).max(1)
}

/// Coordinator-side state of one batched k-select execution: the running
/// top-`count` candidate set plus the announcement bookkeeping for the
/// deactivation bar (the current `count`-th best).
///
/// The node side is the plain [`Participant`](crate::extremum::Participant)
/// of the extremum protocol — feed it the announced bar where it expects the
/// announced maximum.
#[derive(Debug, Clone)]
pub struct KSelectAggregator<O: ProtocolOrder = MaxOrder> {
    /// Best-first running top-`count` (strictly ordered by `O`, ties by id).
    candidates: Vec<Report>,
    count: usize,
    announced_bar: Option<Report>,
    n_bound: u64,
    reports_received: u64,
    _order: PhantomData<O>,
}

impl<O: ProtocolOrder> KSelectAggregator<O> {
    /// Select the top `count ≥ 1` values among up to `n_bound` participants.
    pub fn new(count: usize, n_bound: u64) -> Self {
        assert!(count >= 1, "must select at least one value");
        assert!(n_bound >= 1, "protocol bound must be positive");
        KSelectAggregator {
            candidates: Vec::with_capacity(count + 1),
            count,
            announced_bar: None,
            n_bound,
            reports_received: 0,
            _order: PhantomData,
        }
    }

    /// Index of the final participant round (send probability reaches 1):
    /// `⌈log₂(sampling_bound)⌉` — shorter than a maximum search's
    /// `⌈log₂N⌉` because the schedule starts at `count/N`.
    #[inline]
    pub fn last_round(&self) -> u32 {
        topk_net::rng::log2_ceil(sampling_bound(self.count, self.n_bound))
    }

    /// The selection size `c` this aggregator was built for.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Reset to the pristine just-constructed state, retaining the
    /// candidate buffer's capacity — lets a long-lived coordinator run one
    /// sweep per FILTERRESET without per-reset allocation.
    pub fn clear(&mut self) {
        self.candidates.clear();
        self.announced_bar = None;
        self.reports_received = 0;
    }

    /// Absorb one report; returns `true` iff the deactivation bar changed
    /// (i.e. the candidate set is full and the report entered it).
    pub fn absorb(&mut self, report: Report) -> bool {
        self.reports_received += 1;
        let bar_before = self.bar();
        // Best-first insertion position: first slot whose occupant does not
        // beat the report.
        let pos = self.candidates.partition_point(|&c| O::better(c, report));
        if pos >= self.count {
            return false; // cannot enter the top-`count`
        }
        self.candidates.insert(pos, report);
        self.candidates.truncate(self.count);
        self.bar() != bar_before
    }

    /// The current deactivation bar: the `count`-th best report, present
    /// only once `count` reports entered. A participant that cannot beat it
    /// is provably outside the top-`count`.
    #[inline]
    pub fn bar(&self) -> Option<Report> {
        (self.candidates.len() == self.count).then(|| self.candidates[self.count - 1])
    }

    /// What (if anything) to broadcast after the current round under
    /// `policy`. Call [`Self::mark_announced`] when the broadcast is
    /// actually emitted.
    pub fn pending_bar(&self, policy: BroadcastPolicy) -> Option<Report> {
        let bar = self.bar()?;
        match policy {
            BroadcastPolicy::OnChange => (self.announced_bar != Some(bar)).then_some(bar),
            BroadcastPolicy::EveryRound => Some(bar),
        }
    }

    /// Record that `pending_bar` was broadcast.
    pub fn mark_announced(&mut self) {
        self.announced_bar = self.bar();
    }

    /// The running top-`count` so far, best-first. Exact once the final
    /// round completed (every non-deactivated participant has sent).
    #[inline]
    pub fn winners(&self) -> &[Report] {
        &self.candidates
    }

    /// Number of reports received (the `Θ(c·log(N/c) + log N)` quantity).
    #[inline]
    pub fn reports_received(&self) -> u64 {
        self.reports_received
    }
}

/// Convenience alias: batched top-`c` selection by maximum value.
pub type MaxKSelectAggregator = KSelectAggregator<MaxOrder>;

#[cfg(test)]
mod tests {
    use super::*;
    use topk_net::id::NodeId;

    fn rep(id: u32, value: u64) -> Report {
        Report {
            id: NodeId(id),
            value,
        }
    }

    #[test]
    fn no_bar_until_count_reports() {
        let mut a: MaxKSelectAggregator = KSelectAggregator::new(3, 8);
        assert_eq!(a.bar(), None);
        assert!(!a.absorb(rep(0, 10)), "bar unchanged while filling");
        assert!(!a.absorb(rep(1, 20)));
        assert_eq!(a.bar(), None);
        assert!(a.absorb(rep(2, 5)), "third report creates the bar");
        assert_eq!(a.bar(), Some(rep(2, 5)));
        assert_eq!(a.reports_received(), 3);
    }

    #[test]
    fn bar_rises_as_better_reports_enter() {
        let mut a: MaxKSelectAggregator = KSelectAggregator::new(2, 8);
        a.absorb(rep(0, 10));
        a.absorb(rep(1, 20));
        assert_eq!(a.bar(), Some(rep(0, 10)));
        // A worse report neither enters nor moves the bar.
        assert!(!a.absorb(rep(2, 5)));
        assert_eq!(a.bar(), Some(rep(0, 10)));
        // A better one enters and lifts the bar.
        assert!(a.absorb(rep(3, 15)));
        assert_eq!(a.bar(), Some(rep(3, 15)));
        let vals: Vec<u64> = a.winners().iter().map(|w| w.value).collect();
        assert_eq!(vals, vec![20, 15]);
    }

    #[test]
    fn winners_are_best_first_with_id_tiebreak() {
        let mut a: MaxKSelectAggregator = KSelectAggregator::new(3, 8);
        for (id, v) in [(4u32, 7u64), (2, 9), (6, 9), (1, 3), (0, 7)] {
            a.absorb(rep(id, v));
        }
        let got: Vec<(u64, u32)> = a.winners().iter().map(|w| (w.value, w.id.0)).collect();
        // 9s first (lower id 2 before 6), then the 7s (id 0 before 4).
        assert_eq!(got, vec![(9, 2), (9, 6), (7, 0)]);
    }

    #[test]
    fn announcement_policies() {
        let mut a: MaxKSelectAggregator = KSelectAggregator::new(1, 4);
        assert_eq!(a.pending_bar(BroadcastPolicy::OnChange), None);
        a.absorb(rep(0, 3));
        assert_eq!(a.pending_bar(BroadcastPolicy::OnChange), Some(rep(0, 3)));
        a.mark_announced();
        assert_eq!(a.pending_bar(BroadcastPolicy::OnChange), None);
        assert_eq!(a.pending_bar(BroadcastPolicy::EveryRound), Some(rep(0, 3)));
    }

    #[test]
    fn sampling_bound_generalizes_algorithm2() {
        assert_eq!(sampling_bound(1, 1024), 1024, "c = 1 is Algorithm 2");
        assert_eq!(sampling_bound(9, 1024), 113);
        assert_eq!(sampling_bound(9, 8), 1, "count ≥ n ⇒ probability-1 round 0");
        let a: MaxKSelectAggregator = KSelectAggregator::new(9, 1 << 20);
        assert_eq!(a.last_round(), topk_net::rng::log2_ceil((1 << 20) / 9));
    }

    #[test]
    fn count_one_degenerates_to_running_maximum() {
        let mut a: MaxKSelectAggregator = KSelectAggregator::new(1, 16);
        let mut m: crate::extremum::MaxAggregator = crate::extremum::Aggregator::new(16);
        for (id, v) in [(0u32, 5u64), (1, 9), (2, 7), (3, 9), (4, 11)] {
            a.absorb(rep(id, v));
            m.absorb(rep(id, v));
        }
        assert_eq!(a.winners()[0], m.result().unwrap());
        assert_eq!(a.bar(), m.result());
    }
}
