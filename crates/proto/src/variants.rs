//! Ablation variants of Algorithm 2's sampling schedule.
//!
//! The paper's protocol doubles the per-round send probability (`2^r/N`).
//! Why doubling? This module makes the design choice measurable by
//! implementing the natural alternatives on the same skeleton:
//!
//! * [`GrowthSchedule::Double`] — the paper's `2^r/N` (baseline);
//! * [`GrowthSchedule::Quadruple`] — `4^r/N`: fewer rounds (≈ half), but
//!   each round overshoots more — more simultaneous senders survive the
//!   previous round's filtering;
//! * [`GrowthSchedule::Linear`] — `(r+1)/N`: very gentle ramp; needs `N`
//!   rounds in the worst case, so it trades latency for messages;
//! * [`GrowthSchedule::Uniform`] — constant `c/N` per round with a
//!   probability-1 final round: no adaptivity at all.
//!
//! Experiment E13 (`topk-sim`) compares expected messages and round counts.
//! All variants remain Las Vegas (a final probability-1 round guarantees
//! termination with the exact extremum).

use rand::Rng;
use serde::{Deserialize, Serialize};

use topk_net::id::{NodeId, Value};
use topk_net::ledger::{ChannelKind, CommLedger};
use topk_net::rng::{derive_seed, substream_rng};
use topk_net::wire::{Report, WireSize};

use crate::extremum::{BroadcastPolicy, MaxOrder, ProtocolOrder};

/// How the per-round send probability grows.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GrowthSchedule {
    /// The paper's `2^r / N`.
    Double,
    /// `4^r / N` — more aggressive, fewer rounds.
    Quadruple,
    /// `(r+1) / N` — gentle linear ramp, many rounds.
    Linear,
    /// Constant `c / N` until the final probability-1 round.
    Uniform { c: u64 },
}

impl GrowthSchedule {
    /// Probability numerator for round `r` (the probability is
    /// `min(1, num/N)`).
    fn numerator(&self, r: u32) -> u64 {
        match *self {
            GrowthSchedule::Double => 1u64.checked_shl(r).unwrap_or(u64::MAX),
            GrowthSchedule::Quadruple => 1u64.checked_shl(2 * r).unwrap_or(u64::MAX),
            GrowthSchedule::Linear => r as u64 + 1,
            GrowthSchedule::Uniform { c } => c.max(1),
        }
    }

    /// Index of the final (probability-1) round for participant bound `n`.
    pub fn last_round(&self, n_bound: u64) -> u32 {
        match *self {
            GrowthSchedule::Double => topk_net::rng::log2_ceil(n_bound),
            GrowthSchedule::Quadruple => topk_net::rng::log2_ceil(n_bound).div_ceil(2),
            GrowthSchedule::Linear => n_bound.saturating_sub(1) as u32,
            GrowthSchedule::Uniform { c } => {
                // Keep expected total rounds comparable: N/c rounds, then
                // force termination.
                (n_bound / c.max(1)) as u32
            }
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            GrowthSchedule::Double => "double (paper)",
            GrowthSchedule::Quadruple => "quadruple",
            GrowthSchedule::Linear => "linear",
            GrowthSchedule::Uniform { .. } => "uniform",
        }
    }
}

/// Outcome of a variant run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariantOutcome {
    pub winner: Option<Report>,
    pub up_msgs: u64,
    pub bcast_msgs: u64,
    pub rounds_run: u32,
}

/// Execute a maximum protocol with an arbitrary [`GrowthSchedule`].
///
/// Identical skeleton to [`crate::runner::run_extremum`]: per-round exact
/// Bernoulli trials, deactivation on dominating announcements, broadcast per
/// `policy`, early exit once everyone settled.
pub fn run_max_variant(
    entries: &[(NodeId, Value)],
    n_bound: u64,
    schedule: GrowthSchedule,
    policy: BroadcastPolicy,
    master_seed: u64,
    protocol_tag: u64,
    ledger: &mut CommLedger,
) -> VariantOutcome {
    assert!(n_bound >= entries.len() as u64);
    let run_seed = derive_seed(master_seed, protocol_tag);
    struct P {
        report: Report,
        active: bool,
        rng: rand_chacha::ChaCha12Rng,
    }
    let mut parts: Vec<P> = entries
        .iter()
        .map(|&(id, v)| P {
            report: Report { id, value: v },
            active: true,
            rng: substream_rng(run_seed, id.0 as u64),
        })
        .collect();

    let last = schedule.last_round(n_bound.max(1));
    let mut best: Option<Report> = None;
    let mut announced: Option<Report> = None;
    let mut up_msgs = 0u64;
    let mut bcast_msgs = 0u64;
    let mut rounds_run = 0u32;

    for r in 0..=last {
        if parts.iter().all(|p| !p.active) {
            break;
        }
        rounds_run += 1;
        let num = if r == last {
            n_bound
        } else {
            schedule.numerator(r).min(n_bound)
        };
        for p in parts.iter_mut() {
            if !p.active {
                continue;
            }
            if let Some(a) = announced {
                if !MaxOrder::better(p.report, a) {
                    p.active = false;
                    continue;
                }
            }
            if p.rng.gen_range(0..n_bound) < num {
                p.active = false;
                ledger.count(ChannelKind::Up, p.report.wire_bits());
                up_msgs += 1;
                let improves = match best {
                    None => true,
                    Some(b) => MaxOrder::better(p.report, b),
                };
                if improves {
                    best = Some(p.report);
                }
            }
        }
        if r < last {
            let pending = match policy {
                BroadcastPolicy::OnChange => (best != announced).then_some(best).flatten(),
                BroadcastPolicy::EveryRound => best,
            };
            if let Some(b) = pending {
                ledger.count(ChannelKind::Broadcast, b.wire_bits());
                bcast_msgs += 1;
                announced = Some(b);
            }
        }
    }

    VariantOutcome {
        winner: best,
        up_msgs,
        bcast_msgs,
        rounds_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(n: usize) -> Vec<(NodeId, Value)> {
        (0..n)
            .map(|i| (NodeId(i as u32), ((i * 131) % 1009) as u64))
            .collect()
    }

    #[test]
    fn all_schedules_are_exact() {
        let es = entries(64);
        let expected = es
            .iter()
            .map(|&(id, v)| topk_net::id::RankEntry::new(v, id))
            .max()
            .unwrap();
        for schedule in [
            GrowthSchedule::Double,
            GrowthSchedule::Quadruple,
            GrowthSchedule::Linear,
            GrowthSchedule::Uniform { c: 8 },
        ] {
            for seed in 0..50 {
                let mut ledger = CommLedger::new();
                let out = run_max_variant(
                    &es,
                    64,
                    schedule,
                    BroadcastPolicy::OnChange,
                    seed,
                    1,
                    &mut ledger,
                );
                let w = out.winner.unwrap();
                assert_eq!(
                    (w.value, w.id),
                    (expected.value, expected.id),
                    "{} seed {seed}",
                    schedule.name()
                );
                assert!(out.up_msgs >= 1);
            }
        }
    }

    #[test]
    fn double_matches_reference_runner_statistically() {
        // The variant engine with Double must behave like the reference
        // runner (identical schedule; RNG streams differ, so compare means).
        let es = entries(256);
        let trials = 300u64;
        let mut var_total = 0u64;
        let mut ref_total = 0u64;
        for t in 0..trials {
            let mut l1 = CommLedger::new();
            var_total += run_max_variant(
                &es,
                256,
                GrowthSchedule::Double,
                BroadcastPolicy::OnChange,
                1,
                t,
                &mut l1,
            )
            .up_msgs;
            let mut l2 = CommLedger::new();
            ref_total +=
                crate::runner::run_max(&es, 256, BroadcastPolicy::OnChange, 1, t, &mut l2).up_msgs;
        }
        let v = var_total as f64 / trials as f64;
        let r = ref_total as f64 / trials as f64;
        assert!(
            (v - r).abs() < 1.5,
            "double variant {v:.2} should match reference {r:.2}"
        );
    }

    #[test]
    fn quadruple_uses_fewer_rounds() {
        let es = entries(1024);
        let mut dr = 0u64;
        let mut qr = 0u64;
        for t in 0..100 {
            let mut l = CommLedger::new();
            dr += run_max_variant(
                &es,
                1024,
                GrowthSchedule::Double,
                BroadcastPolicy::OnChange,
                2,
                t,
                &mut l,
            )
            .rounds_run as u64;
            let mut l = CommLedger::new();
            qr += run_max_variant(
                &es,
                1024,
                GrowthSchedule::Quadruple,
                BroadcastPolicy::OnChange,
                2,
                t,
                &mut l,
            )
            .rounds_run as u64;
        }
        assert!(qr < dr, "quadruple rounds {qr} must be below double {dr}");
    }

    #[test]
    fn schedule_numerators() {
        assert_eq!(GrowthSchedule::Double.numerator(3), 8);
        assert_eq!(GrowthSchedule::Quadruple.numerator(3), 64);
        assert_eq!(GrowthSchedule::Linear.numerator(3), 4);
        assert_eq!(GrowthSchedule::Uniform { c: 5 }.numerator(3), 5);
        assert_eq!(GrowthSchedule::Double.last_round(1024), 10);
        assert_eq!(GrowthSchedule::Quadruple.last_round(1024), 5);
    }

    #[test]
    fn empty_set_is_fine() {
        let mut l = CommLedger::new();
        let out = run_max_variant(
            &[],
            4,
            GrowthSchedule::Linear,
            BroadcastPolicy::OnChange,
            0,
            0,
            &mut l,
        );
        assert_eq!(out.winner, None);
    }
}
