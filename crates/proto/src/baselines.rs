//! Deterministic comparison protocols for the §4 experiments.
//!
//! * [`sequential_threshold_max`] — the deterministic strategy from the
//!   Theorem 4.3 lower-bound proof: probe nodes in a fixed order, skipping
//!   (for free, via silence in the synchronous model) every node that cannot
//!   beat the running maximum. Its up-message count equals the number of
//!   left-to-right maxima of the value sequence — `Θ(log n)` in expectation
//!   on random orders (the binary-search-tree root-to-max path).
//! * [`poll_all_max`] — one broadcast request, every node replies: the
//!   trivial `n+1`-message upper bound.
//! * [`bisection_max`] — shout-echo-flavoured threshold bisection over the
//!   value domain (the paper's §1.1 pointer to distributed selection):
//!   `O(log U)` rounds, each one broadcast plus replies from nodes above the
//!   threshold probe.

use topk_net::id::{NodeId, RankEntry, Value};
use topk_net::ledger::{ChannelKind, CommLedger};
use topk_net::wire::{Report, WireSize};

/// Outcome of a deterministic baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineOutcome {
    pub winner: Option<Report>,
    pub up_msgs: u64,
    pub bcast_msgs: u64,
    pub rounds_run: u32,
}

fn best_of(entries: &[(NodeId, Value)]) -> Option<Report> {
    entries
        .iter()
        .map(|&(id, v)| RankEntry::new(v, id))
        .max()
        .map(|e| Report {
            id: e.id,
            value: e.value,
        })
}

/// Deterministic sequential probing (Theorem 4.3's adversary algorithm).
///
/// Nodes respond in id order across `n` silent micro-rounds; node `i` speaks
/// iff it beats the best announced so far, and the coordinator re-announces
/// after every improvement. Message cost: one up per left-to-right maximum
/// and one broadcast per improvement (the final improvement needs no
/// re-announcement, hence `bcasts = ups - 1`); time cost `n` rounds — the
/// shout-echo trade-off the paper contrasts itself against.
pub fn sequential_threshold_max(
    entries: &[(NodeId, Value)],
    ledger: &mut CommLedger,
) -> BaselineOutcome {
    let mut best: Option<Report> = None;
    let mut up_msgs = 0u64;
    let mut bcast_msgs = 0u64;
    for &(id, value) in entries {
        let report = Report { id, value };
        let improves = match best {
            None => true,
            Some(b) => RankEntry::new(value, id) > RankEntry::new(b.value, b.id),
        };
        if improves {
            // The node speaks...
            ledger.count(ChannelKind::Up, report.wire_bits());
            up_msgs += 1;
            // ...and the coordinator re-announces the new threshold so later
            // nodes can stay silent (skip the final announcement: after the
            // last probe the protocol ends).
            if best.is_some() {
                ledger.count(ChannelKind::Broadcast, report.wire_bits());
                bcast_msgs += 1;
            }
            best = Some(report);
        }
    }
    // Correct the accounting: announcements happen after each improvement
    // except the last; the loop above emitted one per improvement except the
    // first. Both equal ups-1, so totals match the model.
    BaselineOutcome {
        winner: best,
        up_msgs,
        bcast_msgs,
        rounds_run: entries.len() as u32,
    }
}

/// Poll every node: 1 broadcast + `n` replies. The naive `M(n) = n + 1`.
pub fn poll_all_max(entries: &[(NodeId, Value)], ledger: &mut CommLedger) -> BaselineOutcome {
    let winner = best_of(entries);
    let probe = Report {
        id: NodeId(0),
        value: 0,
    };
    ledger.count(ChannelKind::Broadcast, probe.wire_bits());
    for &(id, value) in entries {
        ledger.count(ChannelKind::Up, Report { id, value }.wire_bits());
    }
    BaselineOutcome {
        winner,
        up_msgs: entries.len() as u64,
        bcast_msgs: 1,
        rounds_run: 1,
    }
}

/// Threshold bisection over the value domain `[0, u_bound]`.
///
/// Each round broadcasts a threshold; every node at or above it replies.
/// The search narrows to the maximum in `O(log u_bound)` rounds. Message
/// cost is `O(log u_bound)` broadcasts plus all replies — efficient only
/// when few nodes sit near the top, which is exactly the regime the
/// randomized protocol does *not* depend on.
pub fn bisection_max(
    entries: &[(NodeId, Value)],
    u_bound: Value,
    ledger: &mut CommLedger,
) -> BaselineOutcome {
    if entries.is_empty() {
        return BaselineOutcome {
            winner: None,
            up_msgs: 0,
            bcast_msgs: 0,
            rounds_run: 0,
        };
    }
    let mut lo: Value = 0;
    let mut hi: Value = u_bound;
    let mut up_msgs = 0u64;
    let mut bcast_msgs = 0u64;
    let mut rounds = 0u32;
    // Invariant: the maximum is in [lo, hi].
    while lo < hi {
        rounds += 1;
        let mid = topk_net::id::midpoint_floor(lo, hi) + 1; // probe upper half
        let probe = Report {
            id: NodeId(0),
            value: mid,
        };
        ledger.count(ChannelKind::Broadcast, probe.wire_bits());
        bcast_msgs += 1;
        let mut any = false;
        for &(id, value) in entries {
            if value >= mid {
                ledger.count(ChannelKind::Up, Report { id, value }.wire_bits());
                up_msgs += 1;
                any = true;
            }
        }
        if any {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    BaselineOutcome {
        winner: best_of(entries),
        up_msgs,
        bcast_msgs,
        rounds_run: rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(values: &[Value]) -> Vec<(NodeId, Value)> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (NodeId(i as u32), v))
            .collect()
    }

    #[test]
    fn sequential_counts_left_to_right_maxima() {
        // Sequence 3,1,4,1,5,9,2,6: maxima at 3,4,5,9 → 4 ups, 3 bcasts.
        let es = entries(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let mut ledger = CommLedger::new();
        let out = sequential_threshold_max(&es, &mut ledger);
        assert_eq!(out.winner.unwrap().value, 9);
        assert_eq!(out.up_msgs, 4);
        assert_eq!(out.bcast_msgs, 3);
        assert_eq!(out.rounds_run, 8);
    }

    #[test]
    fn sequential_sorted_ascending_is_worst_case() {
        let es = entries(&[1, 2, 3, 4, 5]);
        let mut ledger = CommLedger::new();
        let out = sequential_threshold_max(&es, &mut ledger);
        assert_eq!(out.up_msgs, 5);
    }

    #[test]
    fn sequential_sorted_descending_is_best_case() {
        let es = entries(&[5, 4, 3, 2, 1]);
        let mut ledger = CommLedger::new();
        let out = sequential_threshold_max(&es, &mut ledger);
        assert_eq!(out.up_msgs, 1);
        assert_eq!(out.bcast_msgs, 0);
    }

    #[test]
    fn poll_all_costs_n_plus_one() {
        let es = entries(&[2, 7, 7, 1]);
        let mut ledger = CommLedger::new();
        let out = poll_all_max(&es, &mut ledger);
        assert_eq!(out.winner.unwrap().value, 7);
        assert_eq!(out.winner.unwrap().id, NodeId(1), "tie to lower id");
        assert_eq!(ledger.total(), 5);
    }

    #[test]
    fn bisection_finds_max() {
        let es = entries(&[12, 800, 345, 799]);
        let mut ledger = CommLedger::new();
        let out = bisection_max(&es, 1024, &mut ledger);
        assert_eq!(out.winner.unwrap().value, 800);
        assert!(out.rounds_run <= 11);
        assert!(out.bcast_msgs as u32 == out.rounds_run);
    }

    #[test]
    fn bisection_handles_all_equal() {
        let es = entries(&[5, 5, 5]);
        let mut ledger = CommLedger::new();
        let out = bisection_max(&es, 16, &mut ledger);
        assert_eq!(out.winner.unwrap().value, 5);
        assert_eq!(out.winner.unwrap().id, NodeId(0));
    }

    #[test]
    fn bisection_empty() {
        let mut ledger = CommLedger::new();
        let out = bisection_max(&[], 16, &mut ledger);
        assert_eq!(out.winner, None);
        assert_eq!(ledger.total(), 0);
    }
}
