//! Exact S-way merge of shard-local top-k lists — the composition step of
//! the sharded serving layer (`topk-serve`).
//!
//! **Why the merge is exact.** If global key `x` is among the top `k` of
//! the whole key space, then `x` is among the top `k` of whatever shard
//! holds it — removing keys can only improve `x`'s rank. So the union of
//! shard-local top-`k` lists is a *superset* of the global top-`k`, and
//! selecting the `k` best of that union loses nothing. The same argument
//! with `k+1` gives the exact global `(k+1)`-th best — the *bar*, the
//! serving layer's threshold — from per-shard top-`(k+1)` lists. This is
//! the cross-shard composition of the distributed top-k/k-select data
//! structures of Biermeier et al. (arXiv:1709.07259): shard winners in,
//! exact global winners out, communication proportional to `S·k`, never
//! to the key count.
//!
//! **Machinery reuse.** The candidate selection is literally
//! [`KSelectAggregator`] with `count = k+1`: shard candidates are absorbed
//! best-first, the running `(k+1)`-th best is the deactivation bar, and a
//! shard whose next candidate cannot beat the bar is cut off early —
//! exactly how the batched `FILTERRESET` sweep deactivates sampling
//! participants. [`ShardMerge::offer`] performs that cutoff, so a merge
//! over `S` shards typically inspects `≈ S + (k+1)·log S` candidates (one
//! per shard plus the record-entry tail), not all `S·(k+1)` — the
//! worst case (shards offered in ascending strength) remains `S·(k+1)`.

use topk_net::id::Value;
use topk_net::wire::Report;
use topk_proto::extremum::{MaxOrder, ProtocolOrder};
use topk_proto::kselect::KSelectAggregator;

/// Reusable exact merge of per-shard ranked candidate lists into the
/// global top-`k` ranking plus the `(k+1)`-th-best cut.
///
/// Lifecycle per merge: [`begin`](Self::begin), one
/// [`offer`](Self::offer) per shard (each list best-first), then read
/// [`ranking`](Self::ranking) / [`bar`](Self::bar). All buffers are owned
/// and retained — steady-state merges allocate nothing.
///
/// ```
/// use topk_net::id::NodeId;
/// use topk_net::wire::Report;
/// use topk_ordered::ShardMerge;
///
/// let mut merge = ShardMerge::new(2, 6);
/// merge.begin();
/// // Shard lists are best-first; ids are global keys.
/// merge.offer(&[
///     Report { id: NodeId(0), value: 90 },
///     Report { id: NodeId(4), value: 10 },
/// ]);
/// merge.offer(&[
///     Report { id: NodeId(1), value: 70 },
///     Report { id: NodeId(3), value: 50 },
/// ]);
/// let ranking: Vec<NodeId> = merge.ranking().iter().map(|r| r.id).collect();
/// assert_eq!(ranking, vec![NodeId(0), NodeId(1)]);
/// assert_eq!(merge.bar(), Some(50)); // exact global (k+1)-th best
/// ```
#[derive(Debug, Clone)]
pub struct ShardMerge {
    k: usize,
    select: KSelectAggregator<MaxOrder>,
    /// Candidates offered across all shards since `begin` (the `O(S + k)`
    /// witness: absorbed + bar-rejected first elements, excluding the ones
    /// the bar cut off without inspection).
    offered: u64,
    /// Per-shard ε-approximation tolerance (0 = exact shards).
    tolerance: Value,
}

impl ShardMerge {
    /// Merge towards a global top-`k` over a key space of `keys` total
    /// keys (`keys ≥ 1` is only used for the aggregator's protocol bound;
    /// the merge itself never depends on it).
    pub fn new(k: usize, keys: u64) -> Self {
        assert!(k >= 1, "must merge towards at least one position");
        ShardMerge {
            k,
            select: KSelectAggregator::new(k + 1, keys.max(1)),
            offered: 0,
            tolerance: 0,
        }
    }

    /// Declare that the offered shard candidates come from ε-approximate
    /// shard sessions: each committed candidate value is within `eps` of
    /// the key's true current value (`ApproxMode::Band` shards — see
    /// `topk_core::ApproxMode`). The merge itself is unchanged — it is
    /// still the exact selection over the *committed* values — but the
    /// per-shard ε composes: the merged bar is within `eps` of the true
    /// global `(k+1)`-th best, and [`bar_band`](Self::bar_band) reports
    /// that uncertainty interval. `eps = 0` (the default) declares exact
    /// shards, collapsing the band to a point.
    pub fn with_tolerance(mut self, eps: Value) -> Self {
        self.tolerance = eps;
        self
    }

    /// The declared per-shard ε tolerance ([`Self::with_tolerance`]).
    pub fn tolerance(&self) -> Value {
        self.tolerance
    }

    /// Start a fresh merge, retaining buffer capacity.
    pub fn begin(&mut self) {
        self.select.clear();
        self.offered = 0;
    }

    /// Absorb one shard's candidate list. `candidates` must be best-first
    /// (descending value, ascending global key id on ties) — the order a
    /// shard session's `topk_by_rank()` already has. Offering stops at the
    /// first candidate the current bar deactivates: everything after it is
    /// provably outside the global top-`(k+1)`.
    pub fn offer(&mut self, candidates: &[Report]) {
        debug_assert!(
            candidates.windows(2).all(|w| MaxOrder::better(w[0], w[1])),
            "shard candidates must be strictly best-first"
        );
        for &c in candidates {
            self.offered += 1;
            if let Some(bar) = self.select.bar() {
                if !MaxOrder::better(c, bar) {
                    break; // bar deactivation: the rest of the list is worse
                }
            }
            self.select.absorb(c);
        }
    }

    /// The merged global ranking, best-first, at most `k` entries (fewer
    /// only when the whole key space holds fewer than `k` keys).
    pub fn ranking(&self) -> &[Report] {
        let w = self.select.winners();
        &w[..w.len().min(self.k)]
    }

    /// The exact global `(k+1)`-th-best value — the serving layer's
    /// threshold. `None` while fewer than `k+1` candidates exist (key
    /// space no larger than `k`).
    pub fn bar(&self) -> Option<Value> {
        self.select.winners().get(self.k).map(|r| r.value)
    }

    /// Band-aware threshold report: the interval guaranteed to contain the
    /// **true** global `(k+1)`-th-best value when every shard runs with the
    /// declared ε tolerance ([`Self::with_tolerance`]). With exact shards
    /// (`tolerance = 0`) this degenerates to `(bar, bar)`; `None` exactly
    /// when [`bar`](Self::bar) is `None`.
    pub fn bar_band(&self) -> Option<(Value, Value)> {
        self.bar().map(|b| {
            (
                b.saturating_sub(self.tolerance),
                b.saturating_add(self.tolerance),
            )
        })
    }

    /// The merge target `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Candidates inspected since [`begin`](Self::begin) — thanks to the
    /// bar cutoff typically `≈ S + (k+1)·log S` per merge rather than the
    /// full `S·(k+1)` pool.
    pub fn offered(&self) -> u64 {
        self.offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_net::id::{true_ranking, NodeId};

    /// Split `values` round-robin into `s` shards, rank each shard's keys
    /// locally, and return per-shard best-first top-(k+1) candidate lists
    /// with global ids.
    fn shard_lists(values: &[Value], s: usize, k: usize) -> Vec<Vec<Report>> {
        let mut lists = vec![Vec::new(); s];
        for (i, &v) in values.iter().enumerate() {
            lists[i % s].push(Report {
                id: NodeId(i as u32),
                value: v,
            });
        }
        for list in &mut lists {
            list.sort_unstable_by(|a, b| b.value.cmp(&a.value).then_with(|| a.id.cmp(&b.id)));
            list.truncate(k + 1);
        }
        lists
    }

    fn check_exact(values: &[Value], s: usize, k: usize) {
        let mut merge = ShardMerge::new(k, values.len() as u64);
        merge.begin();
        for list in shard_lists(values, s, k) {
            merge.offer(&list);
        }
        let truth = true_ranking(values);
        let got: Vec<NodeId> = merge.ranking().iter().map(|r| r.id).collect();
        assert_eq!(got, truth[..k.min(values.len())].to_vec(), "ranking");
        let expected_bar = (values.len() > k).then(|| values[truth[k].idx()]);
        assert_eq!(merge.bar(), expected_bar, "bar");
        // Ranked values must be the committed ones.
        for r in merge.ranking() {
            assert_eq!(r.value, values[r.id.idx()]);
        }
    }

    #[test]
    fn merge_is_exact_across_shard_counts() {
        let values: Vec<Value> = (0..40u64).map(|i| (i * 7919) % 1013).collect();
        for s in [1, 2, 3, 7, 11] {
            for k in [1, 3, 8] {
                check_exact(&values, s, k);
            }
        }
    }

    #[test]
    fn merge_handles_ties_by_global_id() {
        // All-equal values: the top-k must be the k lowest global ids, no
        // matter how keys are sharded.
        let values = vec![5u64; 12];
        for s in [1, 2, 5] {
            let mut merge = ShardMerge::new(3, 12);
            merge.begin();
            for list in shard_lists(&values, s, 3) {
                merge.offer(&list);
            }
            let got: Vec<NodeId> = merge.ranking().iter().map(|r| r.id).collect();
            assert_eq!(got, vec![NodeId(0), NodeId(1), NodeId(2)]);
            assert_eq!(merge.bar(), Some(5));
        }
    }

    #[test]
    fn small_key_space_has_no_bar() {
        let values = vec![9u64, 4];
        check_exact(&values, 2, 2);
        let mut merge = ShardMerge::new(2, 2);
        merge.begin();
        for list in shard_lists(&values, 2, 2) {
            merge.offer(&list);
        }
        assert_eq!(merge.bar(), None);
        assert_eq!(merge.ranking().len(), 2);
    }

    #[test]
    fn bar_band_composes_the_per_shard_tolerance() {
        let values: Vec<Value> = (0..20u64).map(|i| 10 + i * 5).collect();
        let (s, k) = (4, 3);
        let mut merge = ShardMerge::new(k, values.len() as u64).with_tolerance(7);
        assert_eq!(merge.tolerance(), 7);
        assert_eq!(merge.bar_band(), None, "no bar before any merge");
        merge.begin();
        for list in shard_lists(&values, s, k) {
            merge.offer(&list);
        }
        let bar = merge.bar().expect("20 keys > k");
        assert_eq!(merge.bar_band(), Some((bar - 7, bar + 7)));
        // Exact shards collapse the band to a point; saturating at zero.
        let exact = ShardMerge::new(k, 20);
        assert_eq!(exact.tolerance(), 0);
        let mut low = ShardMerge::new(1, 3).with_tolerance(100);
        low.begin();
        low.offer(&[
            Report {
                id: NodeId(0),
                value: 40,
            },
            Report {
                id: NodeId(1),
                value: 2,
            },
        ]);
        assert_eq!(low.bar_band(), Some((0, 102)), "lower edge saturates");
    }

    #[test]
    fn bar_cutoff_bounds_inspected_candidates() {
        // 64 shards × 9 candidates each; the bar must cut off all but
        // O(S + k) of them.
        let n = 64 * 9;
        let values: Vec<Value> = (0..n as u64).map(|i| (i * 2654435761) % 100_000).collect();
        let k = 8;
        let s = 64;
        let mut merge = ShardMerge::new(k, n as u64);
        merge.begin();
        for list in shard_lists(&values, s, k) {
            merge.offer(&list);
        }
        check_exact(&values, s, k);
        // One inspected candidate per shard plus the record-entry tail
        // (≈ (k+1)·H_S entries for value-shuffled shards).
        let log2_s = (usize::BITS - s.leading_zeros()) as usize;
        assert!(
            merge.offered() <= (s + 2 * (k + 1) * log2_s) as u64,
            "bar cutoff failed: inspected {} of {} candidates",
            merge.offered(),
            s * (k + 1)
        );
    }
}
