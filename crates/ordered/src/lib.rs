//! # topk-ordered — ordered Top-k-Position Monitoring (§5 of the paper)
//!
//! The paper closes by conjecturing that, for the variant where the
//! coordinator must know not only the top-k *set* but also its internal
//! *order*, "a combination of the approach by Lam et al. and our protocol
//! might lead to an `O(log Δ · log(n−k))`-competitive algorithm". This crate
//! implements a concrete such combination, and experiment E9 measures it:
//!
//! * **Inside the top-k** (the Lam et al. part): rank-adjacent midpoint
//!   filters `[m_i, m_{i-1}]` over the ordered nodes `s_1 … s_k`. An
//!   internal swap violates a filter; the affected contiguous rank span is
//!   polled exactly, re-sorted and refiltered — `O(span)` messages.
//! * **At and below the k boundary** (the Algorithm 2 part): all non-top-k
//!   nodes share the threshold filter `[−∞, m_k]`. A boundary crossing
//!   (riser above `m_k`, or a top-k node sinking below it) triggers a
//!   re-selection of the ordered top-(k+1) via iterated
//!   MAXIMUMPROTOCOL(n) runs — `O(k·log n)` messages, exactly like
//!   `FILTERRESET`.
//!
//! The answer exposed is the full ranking `s_1 … s_k`; the unordered set is
//! also available through the [`Monitor`] trait.

#![forbid(unsafe_code)]

pub mod merge;

pub use merge::ShardMerge;

use topk_net::id::{midpoint_floor, true_ranking, NodeId, RankEntry, Value};
use topk_net::ledger::{ChannelKind, CommLedger, LedgerSnapshot};
use topk_net::rng::derive_seed;
use topk_net::wire::{varint_bits, Report, WireSize};

use topk_core::monitor::{Monitor, RowCache};
use topk_proto::extremum::BroadcastPolicy;
use topk_proto::runner::select_topk;

const RESELECT_STREAM: u64 = 0x0dde_d070;

fn report_bits(id: NodeId, value: Value) -> u32 {
    8 + Report { id, value }.wire_bits()
}

fn value_bits(value: Value) -> u32 {
    8 + varint_bits(value)
}

/// Event counters of the ordered monitor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OrderedMetrics {
    /// Steps processed.
    pub steps: u64,
    /// Steps with at least one filter violation.
    pub violation_steps: u64,
    /// Local span repairs (internal order changes).
    pub span_repairs: u64,
    /// Full protocol-based re-selections (boundary crossings + init).
    pub reselections: u64,
}

/// Ordered top-k monitor: exact internal ranking + protocol-based boundary.
pub struct OrderedTopkMonitor {
    n: usize,
    k: usize,
    seed: u64,
    /// `ranked[i]` = node at rank `i` (0 = maximum), length `k`.
    ranked: Vec<NodeId>,
    /// Exact values of the ranked nodes at last contact.
    ranked_values: Vec<Value>,
    /// `bounds[i]` separates rank `i` from rank `i+1` (for `i < k-1`);
    /// `bounds[k-1]` is the shared threshold of all non-top-k nodes.
    bounds: Vec<Value>,
    ledger: CommLedger,
    metrics: OrderedMetrics,
    initialized: bool,
    reselect_counter: u64,
    sparse_row: RowCache,
}

impl OrderedTopkMonitor {
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k >= 1 && k <= n, "1 ≤ k ≤ n");
        OrderedTopkMonitor {
            n,
            k,
            seed,
            ranked: Vec::new(),
            ranked_values: Vec::new(),
            bounds: Vec::new(),
            ledger: CommLedger::new(),
            metrics: OrderedMetrics::default(),
            initialized: false,
            reselect_counter: 0,
            sparse_row: RowCache::default(),
        }
    }

    /// The full current ranking `s_1 … s_k` (rank order, not id order).
    pub fn ranking(&self) -> Vec<NodeId> {
        self.ranked.clone()
    }

    /// Event counters.
    pub fn metrics(&self) -> OrderedMetrics {
        self.metrics
    }

    fn rank_of(&self, id: NodeId) -> Option<usize> {
        self.ranked.iter().position(|&x| x == id)
    }

    /// Rebuild `bounds` from the exact ranked values and the (k+1)-st value.
    fn rebuild_bounds(&mut self, kplus1: Value) {
        self.bounds.clear();
        for i in 0..self.k - 1 {
            self.bounds.push(midpoint_floor(
                self.ranked_values[i],
                self.ranked_values[i + 1],
            ));
        }
        self.bounds
            .push(midpoint_floor(self.ranked_values[self.k - 1], kplus1));
    }

    /// Re-select the ordered top-(k+1) with iterated MAXIMUMPROTOCOL(n)
    /// runs (winner announcements counted), then refilter.
    fn reselect(&mut self, values: &[Value]) {
        self.metrics.reselections += 1;
        self.reselect_counter += 1;
        let entries: Vec<(NodeId, Value)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (NodeId(i as u32), v))
            .collect();
        let take = (self.k + 1).min(self.n);
        let winners = select_topk(
            &entries,
            take,
            self.n as u64,
            BroadcastPolicy::OnChange,
            true,
            self.seed,
            derive_seed(RESELECT_STREAM, self.reselect_counter),
            &mut self.ledger,
        );
        self.ranked = winners[..self.k].iter().map(|w| w.id).collect();
        self.ranked_values = winners[..self.k].iter().map(|w| w.value).collect();
        let kplus1 = if winners.len() > self.k {
            winners[self.k].value
        } else {
            0
        };
        self.rebuild_bounds(kplus1);
        // Filter delivery: each ranked node learns its interval (k unicasts)
        // and the shared boundary threshold is broadcast.
        for _ in 0..self.k {
            self.ledger.count(ChannelKind::Down, value_bits(1) * 2);
        }
        self.ledger.count(
            ChannelKind::Broadcast,
            value_bits(*self.bounds.last().unwrap()),
        );
        self.initialized = true;
    }

    /// Does the ranked node at rank `r` violate its interval with value `v`?
    fn rank_violates(&self, r: usize, v: Value) -> bool {
        if r > 0 && v > self.bounds[r - 1] {
            return true;
        }
        v < self.bounds[r]
    }
}

impl Monitor for OrderedTopkMonitor {
    fn name(&self) -> &'static str {
        "ordered-topk"
    }

    topk_core::row_cache_step_sparse!();

    fn step(&mut self, _t: u64, values: &[Value]) {
        assert_eq!(values.len(), self.n);
        self.metrics.steps += 1;
        if !self.initialized {
            self.reselect(values);
            return;
        }
        let boundary = *self.bounds.last().unwrap();

        // Classify violations: boundary crossings force a re-selection;
        // internal rank swaps are repaired locally.
        let mut boundary_event = false;
        let mut internal_violators: Vec<(usize, Value)> = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            let id = NodeId(i as u32);
            match self.rank_of(id) {
                Some(r) => {
                    if self.rank_violates(r, v) {
                        self.ledger.count(ChannelKind::Up, report_bits(id, v));
                        if v < boundary {
                            boundary_event = true; // sank out of the top-k zone
                        } else {
                            internal_violators.push((r, v));
                        }
                    }
                }
                None => {
                    if v > boundary {
                        self.ledger.count(ChannelKind::Up, report_bits(id, v));
                        boundary_event = true;
                    }
                }
            }
        }
        if !boundary_event && internal_violators.is_empty() {
            return;
        }
        self.metrics.violation_steps += 1;

        if boundary_event {
            self.reselect(values);
            return;
        }

        // Internal span repair (Lam et al. part): hull of every violator's
        // old and landing rank, polled exactly, re-sorted, refiltered.
        self.metrics.span_repairs += 1;
        let mut span_lo = usize::MAX;
        let mut span_hi = 0usize;
        for &(r, v) in &internal_violators {
            // Landing rank among the k ranked intervals (internal bounds
            // are descending).
            let land = self.bounds[..self.k - 1].partition_point(|&b| b > v);
            span_lo = span_lo.min(r.min(land));
            span_hi = span_hi.max(r.max(land));
        }
        // Poll non-violating span members: 1 broadcast + replies.
        self.ledger.count(ChannelKind::Broadcast, value_bits(0));
        let violator_ranks: Vec<usize> = internal_violators.iter().map(|&(r, _)| r).collect();
        for r in span_lo..=span_hi {
            let id = self.ranked[r];
            if !violator_ranks.contains(&r) {
                self.ledger
                    .count(ChannelKind::Up, report_bits(id, values[id.idx()]));
            }
            self.ranked_values[r] = values[id.idx()];
        }
        // Re-sort the span by exact values (RankEntry order).
        let mut pairs: Vec<(Value, NodeId)> = (span_lo..=span_hi)
            .map(|r| (self.ranked_values[r], self.ranked[r]))
            .collect();
        pairs.sort_unstable_by(|a, b| RankEntry::new(b.0, b.1).cmp(&RankEntry::new(a.0, a.1)));
        for (off, (v, id)) in pairs.into_iter().enumerate() {
            self.ranked[span_lo + off] = id;
            self.ranked_values[span_lo + off] = v;
        }
        // Recompute interior bounds touching the span (edges still
        // separate; the k-boundary bounds[k-1] is untouched).
        let hi_bound = span_hi.min(self.k.saturating_sub(2));
        for r in span_lo..=hi_bound {
            if r + 1 < self.k {
                self.bounds[r] = midpoint_floor(self.ranked_values[r], self.ranked_values[r + 1]);
            }
        }
        // Filter delivery to span members.
        for _ in span_lo..=span_hi {
            self.ledger.count(ChannelKind::Down, value_bits(1) * 2);
        }
    }

    fn topk(&self) -> Vec<NodeId> {
        let mut ids = self.ranked.clone();
        ids.sort_unstable();
        ids
    }

    fn ledger(&self) -> LedgerSnapshot {
        self.ledger.snapshot()
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }
}

/// Check the maintained ranking against ground truth, tolerating swaps only
/// between positions holding equal values.
pub fn ranking_consistent(values: &[Value], ranking: &[NodeId]) -> bool {
    let truth = true_ranking(values);
    for (pos, id) in ranking.iter().enumerate() {
        if truth[pos] != *id && values[truth[pos].idx()] != values[id.idx()] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use topk_streams::WorkloadSpec;

    fn drive(
        n: usize,
        k: usize,
        spec: &WorkloadSpec,
        seed: u64,
        steps: usize,
    ) -> OrderedTopkMonitor {
        let trace = spec.record(seed, steps);
        let mut mon = OrderedTopkMonitor::new(n, k, seed ^ 0xabcd);
        for t in 0..steps {
            let row = trace.step(t);
            mon.step(t as u64, row);
            assert!(
                ranking_consistent(row, &mon.ranking()),
                "bad ranking {:?} at t={t} for {row:?}",
                mon.ranking()
            );
            assert!(topk_core::is_valid_topk(row, &mon.topk()));
        }
        mon
    }

    #[test]
    fn tracks_order_on_random_walks() {
        for seed in 0..3 {
            let spec = WorkloadSpec::RandomWalk {
                n: 10,
                lo: 0,
                hi: 10_000,
                step_max: 150,
                lazy_p: 0.2,
            };
            drive(10, 3, &spec, seed, 300);
        }
    }

    #[test]
    fn tracks_order_under_chaos() {
        let spec = WorkloadSpec::IidUniform {
            n: 8,
            lo: 0,
            hi: 400,
        };
        drive(8, 3, &spec, 1, 150);
    }

    #[test]
    fn internal_swaps_do_not_reselect() {
        // Two top nodes swap while staying far above the boundary: span
        // repair only, no protocol re-selection.
        let rows = [vec![1000u64, 900, 10, 20], vec![890u64, 910, 10, 20]];
        let mut mon = OrderedTopkMonitor::new(4, 2, 5);
        mon.step(0, &rows[0]);
        let resel_after_init = mon.metrics().reselections;
        mon.step(1, &rows[1]);
        assert!(ranking_consistent(&rows[1], &mon.ranking()));
        assert_eq!(
            mon.metrics().reselections,
            resel_after_init,
            "internal swap must be a local repair"
        );
        assert_eq!(mon.metrics().span_repairs, 1);
    }

    #[test]
    fn boundary_rise_triggers_reselection() {
        let rows = [vec![1000u64, 900, 10, 20], vec![1000, 900, 950, 20]];
        let mut mon = OrderedTopkMonitor::new(4, 2, 5);
        mon.step(0, &rows[0]);
        let before = mon.metrics().reselections;
        mon.step(1, &rows[1]);
        assert_eq!(mon.metrics().reselections, before + 1);
        assert!(ranking_consistent(&rows[1], &mon.ranking()));
    }

    #[test]
    fn quiet_steps_are_free() {
        let mut mon = OrderedTopkMonitor::new(5, 2, 9);
        mon.step(0, &[100, 80, 10, 20, 30]);
        let base = mon.ledger().total();
        for t in 1..100 {
            mon.step(t, &[100 + t % 3, 80 + t % 2, 10, 20, 30]);
        }
        assert_eq!(mon.ledger().total(), base);
    }

    #[test]
    fn k_equals_one_works() {
        let spec = WorkloadSpec::RandomWalk {
            n: 6,
            lo: 0,
            hi: 5000,
            step_max: 400,
            lazy_p: 0.1,
        };
        drive(6, 1, &spec, 7, 200);
    }

    #[test]
    fn k_equals_n_keeps_full_order() {
        let spec = WorkloadSpec::RandomWalk {
            n: 5,
            lo: 0,
            hi: 1000,
            step_max: 100,
            lazy_p: 0.2,
        };
        drive(5, 5, &spec, 3, 150);
    }

    #[test]
    fn ranking_consistency_checker() {
        let values = vec![10u64, 30, 20, 30];
        // Truth: n1(30), n3(30), n2(20), n0(10).
        assert!(ranking_consistent(&values, &[NodeId(1), NodeId(3)]));
        // Equal values may swap.
        assert!(ranking_consistent(&values, &[NodeId(3), NodeId(1)]));
        // Unequal values may not.
        assert!(!ranking_consistent(&values, &[NodeId(2), NodeId(1)]));
    }
}
