//! Workload-generator throughput (values/second) — ensures the experiment
//! harness is never generator-bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use topk_streams::WorkloadSpec;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("streams/fill_step");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    let n = 1024usize;
    let specs = vec![
        WorkloadSpec::IidUniform {
            n,
            lo: 0,
            hi: 1 << 20,
        },
        WorkloadSpec::default_walk(n),
        WorkloadSpec::GaussianWalk {
            n,
            lo: 0,
            hi: 1 << 20,
            sigma: 100.0,
        },
        WorkloadSpec::ZipfJumps {
            n,
            lo: 0,
            hi: 1 << 20,
            max_jump: 1 << 14,
            s: 1.2,
        },
        WorkloadSpec::SensorField { n },
        WorkloadSpec::Bursty {
            n,
            lo: 0,
            hi: 1 << 20,
            quiet_step: 2,
            burst_step: 1 << 12,
            p_enter_burst: 0.01,
            p_exit_burst: 0.2,
        },
    ];
    for spec in specs {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(spec.name()),
            &spec,
            |b, spec| {
                let mut feed = spec.build(7);
                let mut out = vec![0u64; n];
                let mut t = 0u64;
                b.iter(|| {
                    feed.fill_step(t, &mut out);
                    t += 1;
                    black_box(out[0])
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
