//! Dense vs sparse stepping at scale: n ∈ {1k, 10k, 100k} with 1% movers.
//!
//! The acceptance metric of the sparse-stepping work: steady-state
//! silent-step throughput of `step_sparse` (fed by `fill_delta`) must dwarf
//! the dense `fill_step` + `step` path at large `n` — per-step cost drops
//! from O(n) (row generation + diff) to O(#changed + #engaged).
//!
//! The workload is the natively sparse [`WorkloadSpec::SparseWalk`] on a
//! wide domain (2⁴⁰ ≫ step_max), i.e. the paper's "similar consecutive
//! values" regime where the k-boundary gap is far larger than any single
//! move and steps are overwhelmingly communication-silent. (On a narrow
//! domain the randomized reset protocol itself is Θ(n) per violation — a
//! message-complexity property no execution path can hide.)
//!
//! `cold_start` measures the whole run including construction and the
//! Θ(n log n) init reset, for context.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use topk_core::msg::{DownMsg, UpMsg};
use topk_core::{Monitor, MonitorConfig, NodeMachine, TopkMonitor};
use topk_net::behavior::{NodeBehavior, ObserveAction, RoundAction, ValueFeed};
use topk_net::id::{NodeId, Value};
use topk_net::seq::SyncRuntime;
use topk_streams::WorkloadSpec;

const SIZES: &[usize] = &[1_000, 10_000, 100_000];
const MOVER_FRACTION: f64 = 0.01;

fn spec(n: usize) -> WorkloadSpec {
    WorkloadSpec::SparseWalk {
        n,
        lo: 0,
        hi: 1 << 40,
        step_max: 64,
        sparsity: MOVER_FRACTION,
    }
}

/// A monitor warmed past its dense init step, plus its feed, change-list
/// scratch, and current time.
type Warm = (TopkMonitor, Box<dyn ValueFeed>, Vec<(NodeId, Value)>, u64);

fn warm(n: usize) -> Warm {
    let mut mon = TopkMonitor::new(MonitorConfig::new(n, 8), 9);
    let mut feed = spec(n).build(5);
    let mut changes: Vec<(NodeId, Value)> = Vec::new();
    feed.fill_delta(0, &mut changes);
    mon.step_sparse(0, &changes);
    (mon, feed, changes, 0)
}

/// Steady-state dense path: full rows via `fill_step`, diffing `step`.
fn dense_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_step/dense");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in SIZES {
        let (mut mon, mut feed, _, mut t) = warm(n);
        let mut row = vec![0 as Value; n];
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                t += 1;
                feed.fill_step(t, &mut row);
                mon.step(t, &row);
                black_box(mon.silent_steps())
            });
        });
    }
    group.finish();
}

/// Steady-state sparse path: change lists via `fill_delta`, `step_sparse`.
fn sparse_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_step/sparse");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in SIZES {
        let (mut mon, mut feed, mut changes, mut t) = warm(n);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                t += 1;
                feed.fill_delta(t, &mut changes);
                mon.step_sparse(t, &changes);
                black_box(mon.silent_steps())
            });
        });
    }
    group.finish();
}

/// The pre-sparse-stepping execution model, reconstructed: a wrapper that
/// does *not* opt into `SPARSE_OBSERVE`, so the runtime calls `observe` on
/// every node every step (exactly the seed's dense scan). This is the
/// baseline the 10× acceptance target measures against.
struct LegacyNode(NodeMachine);

impl NodeBehavior for LegacyNode {
    type Up = UpMsg;
    type Down = DownMsg;

    // SPARSE_OBSERVE stays at its default `false`.

    fn id(&self) -> NodeId {
        self.0.id()
    }

    fn observe(&mut self, t: u64, value: Value) -> ObserveAction<UpMsg> {
        self.0.observe(t, value)
    }

    fn micro_round(
        &mut self,
        t: u64,
        m: u32,
        bcasts: &[DownMsg],
        ucast: Option<&DownMsg>,
    ) -> RoundAction<UpMsg> {
        self.0.micro_round(t, m, bcasts, ucast)
    }
}

/// Steady-state legacy path: `observe` on all n nodes every step.
fn legacy_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_step/legacy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in SIZES {
        let cfg = MonitorConfig::new(n, 8);
        let (nodes, coord) = TopkMonitor::make_parts(cfg, 9);
        let mut rt = SyncRuntime::new(nodes.into_iter().map(LegacyNode).collect(), coord, 8);
        let mut feed = spec(n).build(5);
        let mut row = vec![0 as Value; n];
        let mut t = 0u64;
        feed.fill_step(t, &mut row);
        rt.step(t, &row);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                t += 1;
                feed.fill_step(t, &mut row);
                rt.step(t, &row);
                black_box(rt.silent_steps())
            });
        });
    }
    group.finish();
}

/// Generator alone: one `fill_delta` step of the counter-based, stratified
/// `SparseWalk` (no monitor attached) — the satellite acceptance pin for
/// replacing ChaCha draws + the touched-index sort with splitmix64-style
/// counter draws and pre-sorted (one-stratum-per-mover) index generation.
/// Cost is O(movers) mixes with no block cipher and no sort; at 1% movers
/// this must sit well below the monitor's own step_sparse cost above.
fn generator_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_step/generator");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in SIZES {
        let mut feed = spec(n).build(5);
        let mut changes: Vec<(NodeId, Value)> = Vec::new();
        feed.fill_delta(0, &mut changes);
        let mut t = 0u64;
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                t += 1;
                feed.fill_delta(t, &mut changes);
                black_box(changes.len())
            });
        });
    }
    group.finish();
}

/// Whole-run cost including construction and the Θ(n log n) init reset.
fn cold_start(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_step/cold_start");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    const STEPS: u64 = 20;
    for &n in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(STEPS));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut mon = TopkMonitor::new(MonitorConfig::new(n, 8), 9);
                let mut feed = spec(n).build(5);
                let mut changes: Vec<(NodeId, Value)> = Vec::new();
                for t in 0..STEPS {
                    feed.fill_delta(t, &mut changes);
                    mon.step_sparse(t, &changes);
                }
                black_box(mon.ledger().total())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    legacy_steady,
    dense_steady,
    sparse_steady,
    generator_steady,
    cold_start
);
criterion_main!(benches);
