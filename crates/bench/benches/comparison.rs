//! Wall-clock of every monitoring algorithm on one fixed scenario — the E7
//! comparison's time dimension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use topk_net::trace::TraceMatrix;
use topk_sim::AlgoSpec;
use topk_streams::WorkloadSpec;

fn trace() -> TraceMatrix {
    WorkloadSpec::RandomWalk {
        n: 128,
        lo: 0,
        hi: 1 << 20,
        step_max: 512,
        lazy_p: 0.2,
    }
    .record(3, 200)
}

fn bench_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("comparison");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    let trace = trace();
    for algo in [
        AlgoSpec::hero(),
        AlgoSpec::Naive,
        AlgoSpec::PeriodicRecompute,
        AlgoSpec::FilterNaiveResolve,
        AlgoSpec::DominanceMidpoint,
        AlgoSpec::OrderedTopk,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(algo.name()),
            &trace,
            |b, trace| {
                b.iter(|| {
                    let mut mon = algo.build(trace.n(), 4, 11);
                    for t in 0..trace.steps() {
                        mon.step(t as u64, trace.step(t));
                    }
                    black_box(mon.ledger().total())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_comparison);
criterion_main!(benches);
