//! Socket-runtime wire throughput: steps/sec and bytes/step of
//! [`SocketTopkMonitor`] over loopback TCP, against the threaded twin on
//! the same workload.
//!
//! Two regimes at n ∈ {64, 256}:
//!
//! * **sparse steady state** — [`WorkloadSpec::SparseWalk`] on a wide
//!   domain, a fixed absolute mover count, overwhelmingly silent steps.
//!   The delta transport means a silent step writes *zero* bytes; the
//!   per-step wire cost printed alongside the timings must stay flat in
//!   `n` (the hard movers-∪-engaged frame bound is asserted by
//!   `crates/net/tests/socket_frames.rs`).
//! * **churny boundary** — [`WorkloadSpec::BoundaryCross`], values
//!   oscillating across the top-k boundary so most steps run protocol
//!   rounds. This is the regime where frames actually flow; it is the
//!   bytes/step number the `BENCH_wire.json` artifact tracks per commit.
//!
//! The model ledgers of both runtimes are bit-identical (pinned by
//! `tests/runtime_conformance.rs`); what differs — and what this bench
//! measures — is the physical cost of pushing the same protocol through
//! real sockets and length-prefixed frames.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use topk_core::{Monitor, MonitorConfig, SocketTopkMonitor, ThreadedTopkMonitor};
use topk_net::behavior::ValueFeed;
use topk_net::id::{NodeId, Value};
use topk_streams::WorkloadSpec;

const SIZES: &[usize] = &[64, 256];
const MOVERS: usize = 8;

fn sparse_spec(n: usize) -> WorkloadSpec {
    WorkloadSpec::SparseWalk {
        n,
        lo: 0,
        hi: 1 << 40,
        step_max: 64,
        sparsity: MOVERS as f64 / n as f64,
    }
}

fn churn_spec(n: usize) -> WorkloadSpec {
    WorkloadSpec::BoundaryCross {
        n,
        base: 1_000,
        spread: 200,
        amplitude: 150,
        period: 4,
    }
}

/// Steady-state delta-driven socket path: silent steps write no bytes, so
/// the loop measures dispatch + round cost for the movers alone.
fn socket_sparse_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("socket_wire/sparse");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in SIZES {
        let mut mon = SocketTopkMonitor::new(MonitorConfig::new(n, 4), 9);
        let mut feed = sparse_spec(n).build(5);
        let mut changes: Vec<(NodeId, Value)> = Vec::new();
        let mut t = 0u64;
        feed.fill_delta(t, &mut changes);
        mon.step_sparse(t, &changes);
        let bytes_before = mon.wire().bytes_total;
        let steps_before = t;
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                t += 1;
                feed.fill_delta(t, &mut changes);
                mon.step_sparse(t, &changes);
                black_box(mon.wire().bytes_total)
            });
        });
        let steps = t - steps_before;
        if steps > 0 {
            eprintln!(
                "socket_wire/sparse n={n}: {:.1} bytes/step over {steps} steady steps \
                 ({MOVERS} movers)",
                (mon.wire().bytes_total - bytes_before) as f64 / steps as f64
            );
        }
    }
    group.finish();
}

/// Churny boundary-crossing workload on the socket runtime — most steps
/// run rounds, so this is frame throughput under protocol load.
fn socket_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("socket_wire/churn");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in SIZES {
        let mut mon = SocketTopkMonitor::new(MonitorConfig::new(n, 4), 9);
        let mut feed = churn_spec(n).build(5);
        let mut row = vec![0 as Value; n];
        let mut t = 0u64;
        feed.fill_step(t, &mut row);
        mon.step(t, &row);
        let bytes_before = mon.wire().bytes_total;
        let steps_before = t;
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                t += 1;
                feed.fill_step(t, &mut row);
                mon.step(t, &row);
                black_box(mon.wire().bytes_total)
            });
        });
        let steps = t - steps_before;
        if steps > 0 {
            let w = mon.wire();
            eprintln!(
                "socket_wire/churn n={n}: {:.1} bytes/step, {:.2} frames/step over \
                 {steps} steps ({:.1}% framing overhead)",
                (w.bytes_total - bytes_before) as f64 / steps as f64,
                w.frames_total as f64 / steps as f64,
                100.0 * w.overhead_bytes() as f64 / w.bytes_total as f64
            );
        }
    }
    group.finish();
}

/// The same churny workload on the threaded (in-process channel) runtime —
/// the baseline that isolates what loopback TCP + framing costs.
fn threaded_churn_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("socket_wire/churn_threaded_baseline");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in SIZES {
        let mut mon = ThreadedTopkMonitor::new(MonitorConfig::new(n, 4), 9);
        let mut feed = churn_spec(n).build(5);
        let mut row = vec![0 as Value; n];
        let mut t = 0u64;
        feed.fill_step(t, &mut row);
        mon.step(t, &row);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                t += 1;
                feed.fill_step(t, &mut row);
                mon.step(t, &row);
                black_box(mon.silent_steps())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    socket_sparse_steady,
    socket_churn,
    threaded_churn_baseline
);
criterion_main!(benches);
