//! End-to-end scenario cost: full monitoring run plus the offline OPT
//! segmentation (the complete E4 pipeline), and OPT alone.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use topk_core::opt::{opt_segments, OptCostModel};
use topk_sim::{run_scenario_on_trace, AlgoSpec, Scenario};
use topk_streams::WorkloadSpec;

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    const STEPS: usize = 300;
    for &n in &[64usize, 256] {
        let spec = WorkloadSpec::RandomWalk {
            n,
            lo: 0,
            hi: 1 << 20,
            step_max: 256,
            lazy_p: 0.2,
        };
        let trace = spec.record(5, STEPS);
        let sc = Scenario {
            k: 4,
            steps: STEPS,
            workload: spec,
            algo: AlgoSpec::hero(),
            seed: 5,
        };
        group.throughput(Throughput::Elements(STEPS as u64));
        group.bench_with_input(BenchmarkId::new("scenario", n), &trace, |b, trace| {
            b.iter(|| black_box(run_scenario_on_trace(&sc, trace)));
        });
        group.bench_with_input(BenchmarkId::new("opt_only", n), &trace, |b, trace| {
            b.iter(|| black_box(opt_segments(trace, 4, OptCostModel::PerUpdate)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_pipeline);
criterion_main!(benches);
