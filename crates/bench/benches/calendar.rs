//! Fire-round calendar cost, measured end to end through the sequential
//! runtime — the PR-5 acceptance groups:
//!
//! * `calendar/batched_init` — the `t = 0` batched FILTERRESET at growing
//!   `n` (the headline ~2× target over the pre-calendar sweep: sampling
//!   rounds visit only their scheduled firers, and every visit touches a
//!   ≤ 64-byte flat node instead of a ~300-byte one);
//! * `calendar/violation_step` — one all-violating step (order flip):
//!   violation window + handler + reset, every episode calendar-driven;
//! * `calendar/construction` — monitor construction (shared `NodeParams`
//!   + two-word counter RNG vs per-node config copies + ChaCha init);
//! * `calendar/schedule_draw` — the raw one-draw `FireDist` sample.
//!
//! Alongside wall clock the harness prints the poll counts pinned exactly
//! by `crates/core/tests/reset_rounds.rs`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use topk_core::{Monitor, MonitorConfig, TopkMonitor};
use topk_net::id::Value;
use topk_net::rng::CounterRng;
use topk_proto::schedule::FireDist;

const INIT_GRID: &[(usize, usize)] = &[(10_000, 8), (100_000, 8), (1_000_000, 8)];

fn init_values(n: usize) -> Vec<Value> {
    // Deterministic spread-out permutation-ish values (cheap to build).
    (0..n as u64)
        .map(|i| (i * 7919) % (131 * n as u64))
        .collect()
}

fn batched_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar/batched_init");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(3));
    for &(n, k) in INIT_GRID {
        let values = init_values(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &n,
            |b, _| {
                b.iter(|| {
                    let mut mon = TopkMonitor::new(MonitorConfig::new(n, k), 42);
                    mon.step(0, &values);
                    black_box(mon.topk().len())
                });
            },
        );
        let mut mon = TopkMonitor::new(MonitorConfig::new(n, k), 42);
        mon.step(0, &values);
        eprintln!(
            "calendar/batched_init n={n} k={k}: {} micro-polls ({}x n), {} rounds",
            mon.micro_polls(),
            mon.micro_polls() / n as u64,
            mon.metrics().reset_rounds
        );
    }
    group.finish();
}

fn violation_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar/violation_step");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(3));
    for &n in &[10_000usize, 100_000] {
        let k = 8;
        let up: Vec<Value> = (0..n as u64).map(|i| 1_000 + i * 100).collect();
        let down: Vec<Value> = (0..n as u64)
            .map(|i| 1_000 + (n as u64 - i) * 100)
            .collect();
        // Init once outside the measurement; every iteration then flips the
        // total order, so each measured step IS one all-violating violation
        // window + handler + reset (alternating directions keeps every
        // iteration identical in shape).
        let mut mon = TopkMonitor::new(MonitorConfig::new(n, k), 7);
        mon.step(0, &up);
        let mut t = 0u64;
        let mut flipped = false;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                t += 1;
                flipped = !flipped;
                mon.step(t, if flipped { &down } else { &up });
                black_box(mon.metrics().resets)
            });
        });
    }
    group.finish();
}

fn construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar/construction");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[100_000usize, 1_000_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mon = TopkMonitor::new(MonitorConfig::new(n, 8), 42);
                black_box(mon.n())
            });
        });
    }
    group.finish();
}

fn schedule_draw(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar/schedule_draw");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    let dist = FireDist::for_bound(1_000_000 / 9);
    let mut rng = CounterRng::substream(1, 2);
    group.throughput(Throughput::Elements(1));
    group.bench_function("n1M_k8_bound", |b| {
        b.iter(|| black_box(dist.sample(&mut rng)));
    });
    group.finish();
}

criterion_group!(
    benches,
    batched_init,
    violation_step,
    construction,
    schedule_draw
);
criterion_main!(benches);
