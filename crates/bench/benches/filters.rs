//! Micro-benchmarks of the filter machinery: violation checks (the per-node
//! per-step hot path), Lemma 2.2 validation, and tracker updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use topk_filters::{FilterInterval, FilterSet, GapTracker};
use topk_net::id::true_topk;
use topk_net::rng::substream_rng;

use rand::Rng;

fn bench_violation_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("filters/violation_check");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    let filter = FilterInterval::above(1 << 19);
    let mut rng = substream_rng(1, 1);
    let values: Vec<u64> = (0..4096).map(|_| rng.gen_range(0..1u64 << 20)).collect();
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("batch_4096", |b| {
        b.iter(|| {
            let mut violations = 0u32;
            for &v in &values {
                violations += filter.check(black_box(v)).is_some() as u32;
            }
            black_box(violations)
        });
    });
    group.finish();
}

fn bench_lemma22_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("filters/lemma22");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &n in &[64usize, 1024] {
        let mut rng = substream_rng(2, n as u64);
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 20)).collect();
        let k = 8.min(n - 1);
        let topk = true_topk(&values, k);
        let mut sorted = values.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let m = topk_net::id::midpoint_floor(sorted[k - 1], sorted[k]);
        let fs = FilterSet::threshold(n, k, m, &topk);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &fs, |b, fs| {
            b.iter(|| black_box(fs.is_valid_for(&values)));
        });
    }
    group.finish();
}

fn bench_gap_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("filters/gap_tracker");
    group.sample_size(30);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("absorb_chain", |b| {
        b.iter(|| {
            let mut g = GapTracker::start_epoch(0, 1 << 30, 0);
            let mut out = 0u64;
            for i in 0..64u64 {
                match g.absorb((1 << 30) - i * 1000, i * 500) {
                    topk_filters::GapUpdate::Midpoint(m) => out ^= m,
                    topk_filters::GapUpdate::Band(_) => unreachable!("ε = 0 never bands"),
                    topk_filters::GapUpdate::ResetRequired => break,
                }
            }
            black_box(out)
        });
    });
    // The ε-band variant: inverted boundaries inside the band re-center
    // instead of resetting — the absorb path of approximate mode.
    group.bench_function("absorb_banded_chain", |b| {
        b.iter(|| {
            let mut g = GapTracker::start_epoch(0, 1 << 30, 0);
            let mut out = 0u64;
            for i in 0..64u64 {
                match g.absorb_banded((1 << 29) - i * 100, (1 << 29) + i * 100, 1 << 20) {
                    topk_filters::GapUpdate::Midpoint(m) => out ^= m,
                    topk_filters::GapUpdate::Band(m) => out ^= m,
                    topk_filters::GapUpdate::ResetRequired => break,
                }
            }
            black_box(out)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_violation_check,
    bench_lemma22_validation,
    bench_gap_tracker
);
criterion_main!(benches);
