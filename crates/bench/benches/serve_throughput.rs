//! Serving-layer throughput: a sharded [`TopkService`] against a single
//! [`MonitorSession`] on the same sparse workload.
//!
//! Three groups at a fixed key space (50k keys, 1% movers per step):
//!
//! * **ingest** — `update_batch` + `advance` per step across shard counts
//!   {1, 2, 4}; throughput is reported in *updates*/sec (movers per step),
//!   the serving layer's headline number. A changed step pays the shard
//!   round plus the `S`-way exact merge and event derivation.
//! * **session_baseline** — the identical stream through one
//!   [`MonitorSession`]; the gap to `ingest/1` is the worker-handoff +
//!   merge overhead the front door costs, the gap to higher shard counts
//!   is what concurrent shard rounds buy back.
//! * **silent** — `advance` with nothing buffered: one concurrent no-op
//!   round across the workers, no merge, no allocation (the zero-alloc
//!   pin lives in `tests/alloc_discipline.rs`).
//!
//! The machine-readable trajectory counterpart (10M keys, deterministic
//! counters) is `results/BENCH_serve.json` via `bench_json`.
//!
//! [`TopkService`]: topk_serve::TopkService
//! [`MonitorSession`]: topk_core::session::MonitorSession

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use topk_core::session::{Engine, MonitorBuilder};
use topk_net::behavior::ValueFeed;
use topk_net::id::{NodeId, Value};
use topk_serve::ServeBuilder;
use topk_streams::WorkloadSpec;

const KEYS: usize = 50_000;
const K: usize = 8;
const SHARDS: &[usize] = &[1, 2, 4];
const MOVERS: usize = 500;
const SEED: u64 = 9;

fn spec() -> WorkloadSpec {
    WorkloadSpec::SparseWalk {
        n: KEYS,
        lo: 0,
        hi: 1 << 40,
        step_max: 64,
        sparsity: MOVERS as f64 / KEYS as f64,
    }
}

/// Steady-state sharded ingest: route the movers, commit the step, merge.
fn serve_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput/ingest");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &s in SHARDS {
        let mut svc = ServeBuilder::new(KEYS, K)
            .shards(s)
            .seed(SEED)
            .engine(Engine::Sequential)
            .build();
        let mut feed = spec().build(5);
        let mut changes: Vec<(NodeId, Value)> = Vec::new();
        let mut t = 0u64;
        feed.fill_delta(t, &mut changes);
        svc.update_batch(changes.iter().copied());
        svc.advance(t);
        group.throughput(Throughput::Elements(MOVERS as u64));
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, _| {
            b.iter(|| {
                t += 1;
                feed.fill_delta(t, &mut changes);
                svc.update_batch(changes.iter().copied());
                svc.advance(t);
                black_box(svc.merge_offered())
            });
        });
    }
    group.finish();
}

/// The identical stream through one session — what the front door costs.
fn session_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput/session_baseline");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    let mut session = MonitorBuilder::new(KEYS, K)
        .seed(SEED)
        .engine(Engine::Sequential)
        .build();
    let mut feed = spec().build(5);
    let mut changes: Vec<(NodeId, Value)> = Vec::new();
    let mut t = 0u64;
    feed.fill_delta(t, &mut changes);
    session.update_batch(changes.iter().copied());
    session.advance(t);
    group.throughput(Throughput::Elements(MOVERS as u64));
    group.bench_with_input(BenchmarkId::from_parameter(KEYS), &KEYS, |b, _| {
        b.iter(|| {
            t += 1;
            feed.fill_delta(t, &mut changes);
            session.update_batch(changes.iter().copied());
            session.advance(t);
            black_box(session.silent_steps())
        });
    });
    group.finish();
}

/// Globally silent service step: dispatch + collect across the workers,
/// no merge, no events, no allocation.
fn serve_silent(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput/silent");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &s in SHARDS {
        let mut svc = ServeBuilder::new(KEYS, K)
            .shards(s)
            .seed(SEED)
            .engine(Engine::Sequential)
            .build();
        let mut feed = spec().build(5);
        let mut changes: Vec<(NodeId, Value)> = Vec::new();
        let mut t = 0u64;
        feed.fill_delta(t, &mut changes);
        svc.update_batch(changes.iter().copied());
        svc.advance(t);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(s), &s, |b, _| {
            b.iter(|| {
                t += 1;
                assert!(svc.advance(t).is_empty());
                black_box(svc.event_capacity())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, serve_ingest, session_baseline, serve_silent);
criterion_main!(benches);
