//! Throughput of the full Algorithm 1 monitoring loop (steps/second) on
//! quiet and churny regimes — the E4/E5 wall-clock companion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use topk_bench::MONITOR_SIZES;
use topk_core::{Monitor, MonitorConfig, TopkMonitor};
use topk_streams::WorkloadSpec;

fn bench_steps(c: &mut Criterion, name: &str, spec_for: impl Fn(usize) -> WorkloadSpec) {
    let mut group = c.benchmark_group(format!("topk_step/{name}"));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    const STEPS: usize = 200;
    for &n in MONITOR_SIZES {
        let trace = spec_for(n).record(5, STEPS);
        group.throughput(Throughput::Elements(STEPS as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &trace, |b, trace| {
            b.iter(|| {
                let mut mon = TopkMonitor::new(MonitorConfig::new(n, 4.min(n)), 9);
                for t in 0..trace.steps() {
                    mon.step(t as u64, trace.step(t));
                }
                black_box(mon.ledger().total())
            });
        });
    }
    group.finish();
}

fn quiet(c: &mut Criterion) {
    bench_steps(c, "quiet_walk", |n| WorkloadSpec::RandomWalk {
        n,
        lo: 0,
        hi: 1 << 20,
        step_max: 32,
        lazy_p: 0.2,
    });
}

fn churny(c: &mut Criterion) {
    bench_steps(c, "churny_iid", |n| WorkloadSpec::IidUniform {
        n,
        lo: 0,
        hi: 1 << 20,
    });
}

criterion_group!(benches, quiet, churny);
criterion_main!(benches);
