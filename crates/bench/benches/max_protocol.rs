//! Wall-clock of one MAXIMUMPROTOCOL execution vs n (experiment E1's time
//! dimension) and of the deterministic baselines (E3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use topk_bench::{permuted_entries, PROTOCOL_SIZES};
use topk_net::ledger::CommLedger;
use topk_proto::baselines::{poll_all_max, sequential_threshold_max};
use topk_proto::extremum::BroadcastPolicy;
use topk_proto::runner::{run_max, select_topk};

fn bench_max_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_protocol");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &n in PROTOCOL_SIZES {
        let entries = permuted_entries(n, 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("algorithm2", n), &entries, |b, es| {
            let mut tag = 0u64;
            b.iter(|| {
                let mut ledger = CommLedger::new();
                tag += 1;
                black_box(run_max(
                    es,
                    es.len() as u64,
                    BroadcastPolicy::OnChange,
                    7,
                    tag,
                    &mut ledger,
                ))
            });
        });
        group.bench_with_input(
            BenchmarkId::new("sequential_probe", n),
            &entries,
            |b, es| {
                b.iter(|| {
                    let mut ledger = CommLedger::new();
                    black_box(sequential_threshold_max(es, &mut ledger))
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("poll_all", n), &entries, |b, es| {
            b.iter(|| {
                let mut ledger = CommLedger::new();
                black_box(poll_all_max(es, &mut ledger))
            });
        });
    }
    group.finish();
}

fn bench_topk_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_select");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let n = 4096;
    let entries = permuted_entries(n, 2);
    for &k in &[1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("iterated_max", k), &k, |b, &k| {
            let mut tag = 0u64;
            b.iter(|| {
                let mut ledger = CommLedger::new();
                tag += 1;
                black_box(select_topk(
                    &entries,
                    k,
                    n as u64,
                    BroadcastPolicy::OnChange,
                    true,
                    3,
                    tag,
                    &mut ledger,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_max_protocol, bench_topk_select);
criterion_main!(benches);
