//! FILTERRESET cost: batched k-select sweep vs the legacy `k+1` sequential
//! maximum searches, measured end to end through the sequential runtime.
//!
//! Each iteration builds a fresh monitor and runs the `t = 0` init step —
//! which *is* one full FILTERRESET over all `n` nodes — so the timing
//! captures everything the reset schedule costs: coordinator rounds,
//! broadcast fan-outs (each polls all `n` nodes), participant coin flips
//! and the up-message plumbing. Alongside the wall clock the harness
//! prints the per-reset round and message counts from the coordinator's
//! phase-attributed metrics, the quantities pinned exactly by
//! `crates/core/tests/reset_rounds.rs`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use topk_core::{Monitor, MonitorConfig, ResetStrategy, TopkMonitor};
use topk_net::id::Value;
use topk_net::rng::substream_rng;

use rand::Rng;

/// (n, k) grid: growing n at the production k = 8, plus a wide-k point.
const GRID: &[(usize, usize)] = &[(1_000, 8), (10_000, 8), (100_000, 8), (10_000, 64)];

fn init_values(n: usize) -> Vec<Value> {
    let mut rng = substream_rng(0xbe7c, 1);
    (0..n).map(|_| rng.gen_range(0..1u64 << 40)).collect()
}

fn bench_strategy(c: &mut Criterion, strategy: ResetStrategy, tag: &str) {
    let mut group = c.benchmark_group(format!("reset_rounds/{tag}"));
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(3));
    for &(n, k) in GRID {
        let values = init_values(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &n,
            |b, _| {
                b.iter(|| {
                    let cfg = MonitorConfig::new(n, k).with_reset(strategy);
                    let mut mon = TopkMonitor::new(cfg, 42);
                    mon.step(0, &values);
                    black_box(mon.topk().len())
                });
            },
        );
        // One representative run's reset accounting.
        let cfg = MonitorConfig::new(n, k).with_reset(strategy);
        let mut mon = TopkMonitor::new(cfg, 42);
        mon.step(0, &values);
        let m = mon.metrics();
        eprintln!(
            "reset_rounds/{tag} n={n} k={k}: {} rounds, {} up-msgs, {} broadcasts per reset",
            m.reset_rounds, m.reset_up, m.reset_bcast
        );
    }
    group.finish();
}

fn batched_reset(c: &mut Criterion) {
    bench_strategy(c, ResetStrategy::Batched, "batched");
}

fn legacy_reset(c: &mut Criterion) {
    bench_strategy(c, ResetStrategy::Legacy, "legacy");
}

criterion_group!(benches, batched_reset, legacy_reset);
criterion_main!(benches);
