//! Delta-driven vs dense threaded transport: silent-step cost at n ∈
//! {64, 256, 1024} node threads with a fixed absolute mover count.
//!
//! The acceptance metric of the delta-transport work: with the movers held
//! constant, per-silent-step frame traffic (and hence wall clock) of the
//! delta-driven path must stay flat as `n` grows, while the legacy dense
//! fan-out pays one frame round-trip per node per step. The workload is
//! [`WorkloadSpec::SparseWalk`] on a wide domain (2⁴⁰ ≫ step_max), so
//! steps are overwhelmingly communication-silent and the transport is the
//! only cost left.
//!
//! Frame-per-step counts are printed alongside the timings; the hard
//! movers-∪-engaged bound is asserted by
//! `crates/net/tests/threaded_frames.rs`, and `sync_frames` never enters
//! the model ledger.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use topk_core::msg::{DownMsg, UpMsg};
use topk_core::{Monitor, MonitorConfig, NodeMachine, ThreadedTopkMonitor, TopkMonitor};
use topk_net::behavior::{NodeBehavior, ObserveAction, RoundAction, ValueFeed};
use topk_net::id::{NodeId, Value};
use topk_net::threaded::ThreadedCluster;
use topk_streams::WorkloadSpec;

const SIZES: &[usize] = &[64, 256, 1024];
const MOVERS: usize = 8;

fn spec(n: usize) -> WorkloadSpec {
    WorkloadSpec::SparseWalk {
        n,
        lo: 0,
        hi: 1 << 40,
        step_max: 64,
        sparsity: MOVERS as f64 / n as f64,
    }
}

/// Steady-state delta-driven threaded path: change lists via `fill_delta`,
/// observation frames only to movers ∪ engaged.
fn threaded_sparse_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_sparse/sparse");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in SIZES {
        let mut mon = ThreadedTopkMonitor::new(MonitorConfig::new(n, 4), 9);
        let mut feed = spec(n).build(5);
        let mut changes: Vec<(NodeId, Value)> = Vec::new();
        let mut t = 0u64;
        feed.fill_delta(t, &mut changes);
        mon.step_sparse(t, &changes);
        let frames_before = mon.sync_frames();
        let steps_before = t;
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                t += 1;
                feed.fill_delta(t, &mut changes);
                mon.step_sparse(t, &changes);
                black_box(mon.silent_steps())
            });
        });
        let steps = t - steps_before;
        if steps > 0 {
            eprintln!(
                "threaded_sparse/sparse n={n}: {:.1} frames/step over {steps} steady steps \
                 ({MOVERS} movers)",
                (mon.sync_frames() - frames_before) as f64 / steps as f64
            );
        }
    }
    group.finish();
}

/// The pre-delta transport, reconstructed: a wrapper that does *not* opt
/// into `SPARSE_OBSERVE`, so every node thread receives an observation
/// frame every step — one channel round-trip per node per step.
struct DenseNode(NodeMachine);

impl NodeBehavior for DenseNode {
    type Up = UpMsg;
    type Down = DownMsg;

    // SPARSE_OBSERVE stays at its default `false`.

    fn id(&self) -> NodeId {
        self.0.id()
    }

    fn observe(&mut self, t: u64, value: Value) -> ObserveAction<UpMsg> {
        self.0.observe(t, value)
    }

    fn micro_round(
        &mut self,
        t: u64,
        m: u32,
        bcasts: &[DownMsg],
        ucast: Option<&DownMsg>,
    ) -> RoundAction<UpMsg> {
        self.0.micro_round(t, m, bcasts, ucast)
    }
}

/// Steady-state dense fan-out: every node thread framed every step.
fn threaded_dense_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded_sparse/dense_fanout");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(200));
    group.measurement_time(Duration::from_secs(2));
    for &n in SIZES {
        let cfg = MonitorConfig::new(n, 4);
        let (nodes, mut coord) = TopkMonitor::make_parts(cfg, 9);
        let mut cluster = ThreadedCluster::spawn(nodes.into_iter().map(DenseNode).collect());
        let mut feed = spec(n).build(5);
        let mut row = vec![0 as Value; n];
        let mut t = 0u64;
        feed.fill_step(t, &mut row);
        cluster.step(&mut coord, t, &row);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                t += 1;
                feed.fill_step(t, &mut row);
                cluster.step(&mut coord, t, &row);
                black_box(cluster.silent_steps())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, threaded_sparse_steady, threaded_dense_steady);
criterion_main!(benches);
