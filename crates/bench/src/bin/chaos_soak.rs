//! Chaos-soak artifact: run a runtime engine behind a seeded
//! fault-injecting transport over a reset-storm workload, hard-assert
//! bit-identity with a fault-free sequential twin at every committed step,
//! and write the [`RecoveryMetrics`] (plus ledger and wall clock) as JSON so
//! CI archives one recovery trajectory per commit next to the
//! `BENCH_*.json` perf artifacts:
//!
//! * default (threaded engine): `results/CHAOS_<seed>.json` — the
//!   in-process fault classes (drop, dup, delay, stall, reply-drop,
//!   coordinator crash-restart);
//! * `CHAOS_ENGINE=socket`: `results/CHAOS_SOCKET_<seed>.json` — the same
//!   classes plus the wire-level ones ([`topk_net::WireChaos`]: torn
//!   frames, connection resets, half-open connections, reconnect storms)
//!   on real loopback-TCP frames, with the physical wire ledger in the
//!   artifact.
//!
//! Usage: `CHAOS_SEED=<u64> [CHAOS_ENGINE=socket] cargo run --release -p
//! topk-bench --bin chaos_soak [out_dir]` (defaults: seed 101, threaded,
//! `results/`). The binary *fails* (panics) if any committed step diverges
//! from the twin or if a headline fault class never fired — an artifact is
//! only produced by a soak that actually proved recovery.

use std::time::Instant;

use serde::Serialize;

use topk_core::{Engine, MonitorBuilder, ResetStrategy};
use topk_net::chaos::{ChaosPolicy, RecoveryMetrics};
use topk_net::ledger::{LedgerSnapshot, WireMetrics};
use topk_sim::{boundary_storm, FaultSchedule};
use topk_streams::WorkloadSpec;

#[derive(Serialize)]
struct ChaosArm {
    strategy: String,
    steps: u64,
    resets: u64,
    violation_steps: u64,
    recovery: RecoveryMetrics,
    retransmit_frames: u64,
    model_messages: u64,
    /// Physical wire ledger (socket engine only; `None` on threaded).
    wire: Option<WireMetrics>,
    wall_ms: f64,
}

#[derive(Serialize)]
struct ChaosReport {
    suite: String,
    engine: String,
    chaos_seed: u64,
    policy: ChaosPolicy,
    n: usize,
    k: usize,
    arms: Vec<ChaosArm>,
    injected_total: u64,
}

fn run_arm(
    engine: Engine,
    strategy: ResetStrategy,
    policy: ChaosPolicy,
    n: usize,
    k: usize,
) -> ChaosArm {
    let steps = 300u64;
    let spec = WorkloadSpec::BoundaryCross {
        n,
        base: 100,
        spread: 25,
        amplitude: 30,
        period: 4,
    };
    let sched = FaultSchedule::new().extend(boundary_storm(
        policy.seed ^ 0x910c,
        n,
        5,
        steps - 10,
        2,
        100,
        20,
    ));
    let mut chaotic = MonitorBuilder::new(n, k)
        .reset(strategy)
        .seed(47)
        .engine(engine)
        .chaos(policy)
        .build();
    let mut twin = MonitorBuilder::new(n, k)
        .reset(strategy)
        .seed(47)
        .engine(Engine::Sequential)
        .build();
    let mut feed_a = sched.apply(spec.build(3));
    let mut feed_b = sched.apply(spec.build(3));

    let t0 = Instant::now();
    for t in 0..steps {
        chaotic.ingest(feed_a.as_mut(), t);
        let ev_a = chaotic.advance(t).to_vec();
        twin.ingest(feed_b.as_mut(), t);
        assert_eq!(
            twin.advance(t),
            ev_a.as_slice(),
            "t={t}: {strategy:?}: event stream diverged from fault-free twin"
        );
        assert_eq!(twin.topk(), chaotic.topk(), "t={t}: answer diverged");
        assert_eq!(
            twin.threshold(),
            chaotic.threshold(),
            "t={t}: threshold diverged"
        );
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let recovery = *chaotic.recovery().expect("chaotic engines expose recovery");
    let l: LedgerSnapshot = chaotic.ledger();
    ChaosArm {
        strategy: format!("{strategy:?}").to_lowercase(),
        steps,
        resets: chaotic.metrics().resets,
        violation_steps: chaotic.metrics().violation_steps,
        recovery,
        retransmit_frames: l.retransmit,
        model_messages: l.up + l.down + l.broadcast,
        wire: chaotic.wire().copied(),
        wall_ms,
    }
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let chaos_seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(101);
    let engine = match std::env::var("CHAOS_ENGINE").as_deref() {
        Ok("socket") | Ok("Socket") => Engine::Socket,
        _ => Engine::Threaded,
    };
    let (n, k) = (10, 2);
    let policy = ChaosPolicy::from_seed(chaos_seed);

    let arms: Vec<ChaosArm> = [ResetStrategy::Batched, ResetStrategy::Legacy]
        .into_iter()
        .map(|s| run_arm(engine, s, policy, n, k))
        .collect();

    // Coverage gate: the artifact only exists if the soak actually soaked.
    let sum = |f: fn(&RecoveryMetrics) -> u64| arms.iter().map(|a| f(&a.recovery)).sum::<u64>();
    assert!(sum(|r| r.injected_drops) > 0, "no drops injected");
    assert!(sum(|r| r.injected_dups) > 0, "no duplicates injected");
    assert!(sum(|r| r.injected_stalls) > 0, "no stalls injected");
    assert!(sum(|r| r.restarts) > 0, "no coordinator restarts injected");
    assert!(arms.iter().all(|a| a.resets >= 3), "storm did not storm");
    if matches!(engine, Engine::Socket) {
        // The wire classes must all have fired, every severed connection
        // must have re-handshook, and the dedup layer must have absorbed
        // re-delivered frames.
        assert!(sum(|r| r.injected_torn_frames) > 0, "no torn frames");
        assert!(sum(|r| r.injected_conn_resets) > 0, "no connection resets");
        assert!(sum(|r| r.injected_half_opens) > 0, "no half-opens");
        assert!(sum(|r| r.reconnects) > 0, "no reconnects");
        assert!(sum(|r| r.redelivered_frames) > 0, "no re-deliveries");
        assert!(
            arms.iter()
                .all(|a| a.wire.is_some_and(|w| w.retransmit_bytes > 0)),
            "faulty wire traffic must land on the retransmit channel"
        );
    }
    let injected_total = arms.iter().map(|a| a.recovery.injected_total()).sum();

    let (engine_name, stem) = match engine {
        Engine::Socket => ("socket", format!("CHAOS_SOCKET_{chaos_seed}")),
        _ => ("threaded", format!("CHAOS_{chaos_seed}")),
    };
    let report = ChaosReport {
        suite: "chaos_soak".into(),
        engine: engine_name.into(),
        chaos_seed,
        policy,
        n,
        k,
        arms,
        injected_total,
    };
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = format!("{dir}/{stem}.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write(&path, json + "\n").expect("write json");
    println!("wrote {path} (engine={engine_name}, injected_total={injected_total})");
}
