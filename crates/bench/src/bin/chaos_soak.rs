//! Chaos-soak artifact: run the threaded runtime behind a seeded
//! fault-injecting transport over a reset-storm workload, hard-assert
//! bit-identity with a fault-free sequential twin at every committed step,
//! and write the [`RecoveryMetrics`] (plus ledger and wall clock) as JSON —
//! `results/CHAOS_<seed>.json` — so CI archives one recovery trajectory per
//! commit next to the `BENCH_*.json` perf artifacts.
//!
//! Usage: `CHAOS_SEED=<u64> cargo run --release -p topk-bench --bin
//! chaos_soak [out_dir]` (defaults: seed 101, `results/`). The binary
//! *fails* (panics) if any committed step diverges from the twin or if a
//! headline fault class never fired — an artifact is only produced by a
//! soak that actually proved recovery.

use std::time::Instant;

use serde::Serialize;

use topk_core::{Engine, MonitorBuilder, ResetStrategy};
use topk_net::chaos::{ChaosPolicy, RecoveryMetrics};
use topk_net::ledger::LedgerSnapshot;
use topk_sim::{boundary_storm, FaultSchedule};
use topk_streams::WorkloadSpec;

#[derive(Serialize)]
struct ChaosArm {
    strategy: String,
    steps: u64,
    resets: u64,
    violation_steps: u64,
    recovery: RecoveryMetrics,
    retransmit_frames: u64,
    model_messages: u64,
    wall_ms: f64,
}

#[derive(Serialize)]
struct ChaosReport {
    suite: String,
    chaos_seed: u64,
    policy: ChaosPolicy,
    n: usize,
    k: usize,
    arms: Vec<ChaosArm>,
    injected_total: u64,
}

fn run_arm(strategy: ResetStrategy, policy: ChaosPolicy, n: usize, k: usize) -> ChaosArm {
    let steps = 300u64;
    let spec = WorkloadSpec::BoundaryCross {
        n,
        base: 100,
        spread: 25,
        amplitude: 30,
        period: 4,
    };
    let sched = FaultSchedule::new().extend(boundary_storm(
        policy.seed ^ 0x910c,
        n,
        5,
        steps - 10,
        2,
        100,
        20,
    ));
    let mut chaotic = MonitorBuilder::new(n, k)
        .reset(strategy)
        .seed(47)
        .chaos(policy)
        .build();
    let mut twin = MonitorBuilder::new(n, k)
        .reset(strategy)
        .seed(47)
        .engine(Engine::Sequential)
        .build();
    let mut feed_a = sched.apply(spec.build(3));
    let mut feed_b = sched.apply(spec.build(3));

    let t0 = Instant::now();
    for t in 0..steps {
        chaotic.ingest(feed_a.as_mut(), t);
        let ev_a = chaotic.advance(t).to_vec();
        twin.ingest(feed_b.as_mut(), t);
        assert_eq!(
            twin.advance(t),
            ev_a.as_slice(),
            "t={t}: {strategy:?}: event stream diverged from fault-free twin"
        );
        assert_eq!(twin.topk(), chaotic.topk(), "t={t}: answer diverged");
        assert_eq!(
            twin.threshold(),
            chaotic.threshold(),
            "t={t}: threshold diverged"
        );
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let recovery = *chaotic.recovery().expect("chaotic engine is threaded");
    let l: LedgerSnapshot = chaotic.ledger();
    ChaosArm {
        strategy: format!("{strategy:?}").to_lowercase(),
        steps,
        resets: chaotic.metrics().resets,
        violation_steps: chaotic.metrics().violation_steps,
        recovery,
        retransmit_frames: l.retransmit,
        model_messages: l.up + l.down + l.broadcast,
        wall_ms,
    }
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let chaos_seed: u64 = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(101);
    let (n, k) = (10, 2);
    let policy = ChaosPolicy::from_seed(chaos_seed);

    let arms: Vec<ChaosArm> = [ResetStrategy::Batched, ResetStrategy::Legacy]
        .into_iter()
        .map(|s| run_arm(s, policy, n, k))
        .collect();

    // Coverage gate: the artifact only exists if the soak actually soaked.
    let sum = |f: fn(&RecoveryMetrics) -> u64| arms.iter().map(|a| f(&a.recovery)).sum::<u64>();
    assert!(sum(|r| r.injected_drops) > 0, "no drops injected");
    assert!(sum(|r| r.injected_dups) > 0, "no duplicates injected");
    assert!(sum(|r| r.injected_stalls) > 0, "no stalls injected");
    assert!(sum(|r| r.restarts) > 0, "no coordinator restarts injected");
    assert!(arms.iter().all(|a| a.resets >= 3), "storm did not storm");
    let injected_total = arms.iter().map(|a| a.recovery.injected_total()).sum();

    let report = ChaosReport {
        suite: "chaos_soak".into(),
        chaos_seed,
        policy,
        n,
        k,
        arms,
        injected_total,
    };
    std::fs::create_dir_all(&dir).expect("create output dir");
    let path = format!("{dir}/CHAOS_{chaos_seed}.json");
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write(&path, json + "\n").expect("write json");
    println!("wrote {path} (injected_total={injected_total})");
}
