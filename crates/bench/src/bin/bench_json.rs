//! Machine-readable perf trajectory: quick (seconds, not minutes)
//! re-measurements of the headline criterion groups, written as JSON so CI
//! can archive one artifact per commit and regressions show up as a diff:
//!
//! * `results/BENCH_reset.json` — FILTERRESET init cost per strategy
//!   (mirrors `benches/reset_rounds.rs` + `benches/calendar.rs`): median
//!   wall clock, rounds, up-messages, micro-polls;
//! * `results/BENCH_sparse.json` — steady-state silent-step cost (mirrors
//!   `benches/sparse_step.rs`): µs/step for the delta-driven loop and the
//!   generator alone;
//! * `results/BENCH_wire.json` — socket-runtime wire cost (mirrors
//!   `benches/socket_wire.rs`): µs/step plus the exact bytes/step,
//!   frames/step, and framing-overhead share written to the loopback-TCP
//!   connections under a churny boundary workload. The byte counts are
//!   deterministic — any drift is a protocol change, not noise;
//! * `results/BENCH_serve.json` — serving-layer scaling (mirrors
//!   `benches/serve_throughput.rs` at 10M keys): updates/sec and merged
//!   advance µs per shard count against a single-session baseline, plus
//!   the deterministic event/ledger/merge counters of the exact same
//!   stream through every arm;
//! * `results/BENCH_approx.json` — the ε-band competitive gap (mirrors
//!   `tests/approx_mode.rs`): exact vs ε-approximate twins on the
//!   boundary-oscillation adversary, per seed. Every counter (resets,
//!   band hits, up-messages, totals, the up-message ratio) is
//!   deterministic for fixed (workload, seed) — the artifact pins the
//!   headline "zero resets, ≥10× fewer up-messages" claim per commit.
//!
//! Usage: `cargo run --release -p topk-bench --bin bench_json [out_dir]`
//! (default `results/`). Medians of a few runs keep the numbers stable
//! enough to eyeball across commits without criterion's full machinery.

use std::time::Instant;

use serde::Serialize;

use topk_core::session::{Engine, MonitorBuilder};
use topk_core::{Monitor, MonitorConfig, ResetStrategy, SocketTopkMonitor, TopkMonitor};
use topk_net::behavior::ValueFeed;
use topk_net::id::{NodeId, Value};
use topk_serve::ServeBuilder;
use topk_streams::WorkloadSpec;

#[derive(Serialize)]
struct ResetPoint {
    n: usize,
    k: usize,
    strategy: String,
    /// Actual runs behind this point's median (large-n points are trimmed).
    runs: usize,
    init_ms_median: f64,
    reset_rounds: u64,
    reset_up_msgs: u64,
    micro_polls: u64,
}

#[derive(Serialize)]
struct SparsePoint {
    n: usize,
    movers_per_step: usize,
    step_us_median: f64,
    generator_us_median: f64,
}

#[derive(Serialize)]
struct WirePoint {
    n: usize,
    k: usize,
    shards: usize,
    steps: u64,
    step_us_median: f64,
    /// Deterministic for fixed (workload, seed): bytes written to the
    /// sockets per step, framing prefix included.
    bytes_per_step: f64,
    frames_per_step: f64,
    bytes_total: u64,
    frames_total: u64,
    /// Share of `bytes_total` that is framing (length prefixes, tags,
    /// handshakes) rather than model-ledger payload.
    overhead_fraction: f64,
}

#[derive(Serialize)]
struct ServePoint {
    /// `"single_session"` (the unsharded baseline) or `"service"`.
    kind: String,
    shards_requested: usize,
    shards_effective: usize,
    ingest_step_us_median: f64,
    /// Movers per step over the median ingest step time.
    updates_per_sec_median: f64,
    /// A globally silent `advance`: one no-op round across the workers.
    silent_advance_us_median: f64,
    /// Deterministic for fixed (workload, seed): total events emitted over
    /// the whole drive — identical across all service shard counts (the
    /// exact-merge conformance contract, visible in the artifact).
    events_total: u64,
    /// Deterministic: summed model-message ledger after the drive.
    ledger_total: u64,
    /// Deterministic: candidates the merges actually inspected (0 for the
    /// single-session baseline).
    merge_offered: u64,
}

#[derive(Serialize)]
struct ApproxPoint {
    n: usize,
    k: usize,
    seed: u64,
    steps: u64,
    epsilon: u64,
    /// Deterministic exact-twin counters on the identical trace.
    exact_resets: u64,
    exact_up_msgs: u64,
    exact_total_msgs: u64,
    /// Deterministic ε-band counters: zero resets by construction of the
    /// workload (every crossing is in-band).
    approx_resets: u64,
    approx_band_hits: u64,
    approx_up_msgs: u64,
    approx_total_msgs: u64,
    /// The headline gap: exact / approx up-messages (pinned ≥ 10 by
    /// `tests/approx_mode.rs`).
    up_msg_ratio: f64,
}

#[derive(Serialize)]
struct ApproxReport {
    suite: String,
    points: Vec<ApproxPoint>,
}

#[derive(Serialize)]
struct ResetReport {
    suite: String,
    points: Vec<ResetPoint>,
}

#[derive(Serialize)]
struct SparseReport {
    suite: String,
    runs_per_point: usize,
    points: Vec<SparsePoint>,
}

#[derive(Serialize)]
struct WireReport {
    suite: String,
    runs_per_point: usize,
    points: Vec<WirePoint>,
}

#[derive(Serialize)]
struct ServeReport {
    suite: String,
    keys: usize,
    k: usize,
    movers_per_step: usize,
    /// Timed chunks per point; each µs median is over this many chunks.
    chunks: usize,
    steps_per_chunk: u64,
    points: Vec<ServePoint>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn init_values(n: usize) -> Vec<Value> {
    (0..n as u64)
        .map(|i| (i * 7919) % (131 * n as u64))
        .collect()
}

fn measure_reset(runs: usize) -> Vec<ResetPoint> {
    let grid: &[(usize, usize)] = &[(10_000, 8), (100_000, 8), (1_000_000, 8)];
    let mut points = Vec::new();
    for &(n, k) in grid {
        let values = init_values(n);
        for strategy in [ResetStrategy::Batched, ResetStrategy::Legacy] {
            // The n = 1M legacy init costs ~1 s per run; one run suffices
            // at that size to track the trajectory.
            let runs = if n >= 1_000_000 {
                1.max(runs / 3)
            } else {
                runs
            };
            let mut times = Vec::new();
            let mut last = None;
            for _ in 0..runs {
                let cfg = MonitorConfig::new(n, k).with_reset(strategy);
                let mut mon = TopkMonitor::new(cfg, 42);
                let t0 = Instant::now();
                mon.step(0, &values);
                times.push(t0.elapsed().as_secs_f64() * 1e3);
                last = Some(mon);
            }
            let mon = last.unwrap();
            points.push(ResetPoint {
                n,
                k,
                strategy: format!("{strategy:?}").to_lowercase(),
                runs,
                init_ms_median: median(times),
                reset_rounds: mon.metrics().reset_rounds,
                reset_up_msgs: mon.metrics().reset_up,
                micro_polls: mon.micro_polls(),
            });
        }
    }
    points
}

fn measure_sparse(runs: usize) -> Vec<SparsePoint> {
    let mut points = Vec::new();
    for &n in &[10_000usize, 100_000] {
        let spec = WorkloadSpec::SparseWalk {
            n,
            lo: 0,
            hi: 1 << 40,
            step_max: 64,
            sparsity: 0.01,
        };
        let steps_per_run = 200u64;
        let mut step_us = Vec::new();
        let mut gen_us = Vec::new();
        for _ in 0..runs {
            let mut mon = TopkMonitor::new(MonitorConfig::new(n, 8), 9);
            let mut feed = spec.build(5);
            let mut changes: Vec<(NodeId, Value)> = Vec::new();
            feed.fill_delta(0, &mut changes);
            mon.step_sparse(0, &changes);
            let t0 = Instant::now();
            for t in 1..=steps_per_run {
                feed.fill_delta(t, &mut changes);
                mon.step_sparse(t, &changes);
            }
            step_us.push(t0.elapsed().as_secs_f64() * 1e6 / steps_per_run as f64);

            // Generator alone (fresh twin so draw counters line up).
            let mut feed = spec.build(5);
            feed.fill_delta(0, &mut changes);
            let t0 = Instant::now();
            for t in 1..=steps_per_run {
                feed.fill_delta(t, &mut changes);
            }
            gen_us.push(t0.elapsed().as_secs_f64() * 1e6 / steps_per_run as f64);
        }
        points.push(SparsePoint {
            n,
            movers_per_step: n / 100,
            step_us_median: median(step_us),
            generator_us_median: median(gen_us),
        });
    }
    points
}

fn measure_wire(runs: usize) -> Vec<WirePoint> {
    let mut points = Vec::new();
    for &n in &[64usize, 256] {
        let k = 4;
        let spec = WorkloadSpec::BoundaryCross {
            n,
            base: 1_000,
            spread: 200,
            amplitude: 150,
            period: 4,
        };
        let steps_per_run = 100u64;
        let mut step_us = Vec::new();
        let mut last = None;
        for _ in 0..runs {
            let mut mon = SocketTopkMonitor::new(MonitorConfig::new(n, k), 9);
            let mut feed = spec.build(5);
            let mut row = vec![0 as Value; n];
            feed.fill_step(0, &mut row);
            mon.step(0, &row);
            let bytes_before = mon.wire().bytes_total;
            let frames_before = mon.wire().frames_total;
            let t0 = Instant::now();
            for t in 1..=steps_per_run {
                feed.fill_step(t, &mut row);
                mon.step(t, &row);
            }
            step_us.push(t0.elapsed().as_secs_f64() * 1e6 / steps_per_run as f64);
            last = Some((mon, bytes_before, frames_before));
        }
        let (mon, bytes_before, frames_before) = last.unwrap();
        let w = mon.wire();
        points.push(WirePoint {
            n,
            k,
            shards: mon.shards(),
            steps: steps_per_run,
            step_us_median: median(step_us),
            bytes_per_step: (w.bytes_total - bytes_before) as f64 / steps_per_run as f64,
            frames_per_step: (w.frames_total - frames_before) as f64 / steps_per_run as f64,
            bytes_total: w.bytes_total,
            frames_total: w.frames_total,
            overhead_fraction: w.overhead_bytes() as f64 / w.bytes_total as f64,
        });
    }
    points
}

const SERVE_KEYS: usize = 10_000_000;
const SERVE_K: usize = 8;
const SERVE_MOVERS: usize = 1_000;
const SERVE_CHUNKS: usize = 5;
const SERVE_CHUNK_STEPS: u64 = 10;
const SERVE_WARMUP_STEPS: u64 = 10;

/// Drive one arm (service or single session, abstracted as a step closure
/// returning that step's event count) through the shared 10M-key sparse
/// stream: warm-up, timed ingest chunks, then timed silent chunks.
/// Returns `(ingest µs/step per chunk, silent µs/step per chunk, total
/// events)` — the event total is deterministic, the timings are not.
fn drive_serve_arm(
    spec: &WorkloadSpec,
    mut step: impl FnMut(u64, &[(NodeId, Value)]) -> usize,
) -> (Vec<f64>, Vec<f64>, u64) {
    let mut feed = spec.build(5);
    let mut changes: Vec<(NodeId, Value)> = Vec::new();
    let mut events_total = 0u64;
    let mut t = 0u64;
    for _ in 0..=SERVE_WARMUP_STEPS {
        feed.fill_delta(t, &mut changes);
        events_total += step(t, &changes) as u64;
        t += 1;
    }
    let mut ingest_us = Vec::new();
    for _ in 0..SERVE_CHUNKS {
        let t0 = Instant::now();
        for _ in 0..SERVE_CHUNK_STEPS {
            feed.fill_delta(t, &mut changes);
            events_total += step(t, &changes) as u64;
            t += 1;
        }
        ingest_us.push(t0.elapsed().as_secs_f64() * 1e6 / SERVE_CHUNK_STEPS as f64);
    }
    let mut silent_us = Vec::new();
    for _ in 0..SERVE_CHUNKS {
        let t0 = Instant::now();
        for _ in 0..SERVE_CHUNK_STEPS {
            events_total += step(t, &[]) as u64;
            t += 1;
        }
        silent_us.push(t0.elapsed().as_secs_f64() * 1e6 / SERVE_CHUNK_STEPS as f64);
    }
    (ingest_us, silent_us, events_total)
}

fn measure_serve() -> Vec<ServePoint> {
    let spec = WorkloadSpec::SparseWalk {
        n: SERVE_KEYS,
        lo: 0,
        hi: 1 << 40,
        step_max: 64,
        sparsity: SERVE_MOVERS as f64 / SERVE_KEYS as f64,
    };
    let mut points = Vec::new();

    // Unsharded baseline: the identical stream through one session.
    {
        let mut session = MonitorBuilder::new(SERVE_KEYS, SERVE_K)
            .seed(9)
            .engine(Engine::Sequential)
            .build();
        let (ingest, silent, events_total) = drive_serve_arm(&spec, |t, changes| {
            session.update_batch(changes.iter().copied());
            session.advance(t).len()
        });
        let ingest_med = median(ingest);
        points.push(ServePoint {
            kind: "single_session".into(),
            shards_requested: 1,
            shards_effective: 1,
            ingest_step_us_median: ingest_med,
            updates_per_sec_median: SERVE_MOVERS as f64 / (ingest_med * 1e-6),
            silent_advance_us_median: median(silent),
            events_total,
            ledger_total: session.ledger().total(),
            merge_offered: 0,
        });
    }

    for &shards in &[1usize, 2, 4, 8] {
        let mut svc = ServeBuilder::new(SERVE_KEYS, SERVE_K)
            .shards(shards)
            .seed(9)
            .engine(Engine::Sequential)
            .build();
        let (ingest, silent, events_total) = drive_serve_arm(&spec, |t, changes| {
            svc.update_batch(changes.iter().copied());
            svc.advance(t).len()
        });
        let ingest_med = median(ingest);
        points.push(ServePoint {
            kind: "service".into(),
            shards_requested: shards,
            shards_effective: svc.shard_count(),
            ingest_step_us_median: ingest_med,
            updates_per_sec_median: SERVE_MOVERS as f64 / (ingest_med * 1e-6),
            silent_advance_us_median: median(silent),
            events_total,
            ledger_total: svc.ledger().total(),
            merge_offered: svc.merge_offered(),
        });
    }
    points
}

/// Exact vs ε-band twins on the boundary-oscillation adversary — the
/// ISSUE 10 headline instance of `tests/approx_mode.rs`, re-measured here
/// so the competitive gap lands in the perf-trajectory artifacts. All
/// counters are deterministic; there is nothing to median.
fn measure_approx() -> Vec<ApproxPoint> {
    let mut points = Vec::new();
    for &(n, k) in &[(64usize, 2usize), (256, 4)] {
        let amplitude = 40u64;
        let eps = 2 * amplitude;
        let steps = 400u64;
        let spec = WorkloadSpec::BoundaryOscillate {
            n,
            k,
            base: 1_000,
            spread: 200,
            amplitude,
            period: 8,
        };
        for seed in [3u64, 17] {
            let mut exact = MonitorBuilder::new(n, k).seed(seed).build();
            let mut approx = MonitorBuilder::new(n, k).seed(seed).epsilon(eps).build();
            for session in [&mut exact, &mut approx] {
                let mut feed = spec.build(seed);
                for t in 0..steps {
                    session.ingest(feed.as_mut(), t);
                    session.advance(t);
                }
            }
            let me = *exact.metrics();
            let ma = *approx.metrics();
            points.push(ApproxPoint {
                n,
                k,
                seed,
                steps,
                epsilon: eps,
                exact_resets: me.resets,
                exact_up_msgs: me.total_up(),
                exact_total_msgs: me.total(),
                approx_resets: ma.resets,
                approx_band_hits: ma.band_hits,
                approx_up_msgs: ma.total_up(),
                approx_total_msgs: ma.total(),
                up_msg_ratio: me.total_up() as f64 / ma.total_up().max(1) as f64,
            });
        }
    }
    points
}

fn write<T: Serialize>(dir: &str, name: &str, report: &T) {
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = format!("{dir}/{name}");
    let json = serde_json::to_string_pretty(report).expect("serialize");
    std::fs::write(&path, json + "\n").expect("write json");
    println!("wrote {path}");
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let runs = 3;
    write(
        &dir,
        "BENCH_reset.json",
        &ResetReport {
            suite: "reset_init".into(),
            points: measure_reset(runs),
        },
    );
    write(
        &dir,
        "BENCH_sparse.json",
        &SparseReport {
            suite: "sparse_steady_state".into(),
            runs_per_point: runs,
            points: measure_sparse(runs),
        },
    );
    write(
        &dir,
        "BENCH_wire.json",
        &WireReport {
            suite: "socket_wire_churn".into(),
            runs_per_point: runs,
            points: measure_wire(runs),
        },
    );
    write(
        &dir,
        "BENCH_serve.json",
        &ServeReport {
            suite: "serve_shard_scaling".into(),
            keys: SERVE_KEYS,
            k: SERVE_K,
            movers_per_step: SERVE_MOVERS,
            chunks: SERVE_CHUNKS,
            steps_per_chunk: SERVE_CHUNK_STEPS,
            points: measure_serve(),
        },
    );
    write(
        &dir,
        "BENCH_approx.json",
        &ApproxReport {
            suite: "approx_band_gap".into(),
            points: measure_approx(),
        },
    );
}
