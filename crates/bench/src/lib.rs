//! Shared helpers for the Criterion bench suite.
//!
//! Each bench file covers one experiment family (see DESIGN.md §5):
//! `max_protocol` (E1/E3 wall-clock), `topk_step` (E4/E5 throughput),
//! `comparison` (E7), `filters`, `streams`, and `end_to_end` (E4 + OPT).

use topk_net::id::{NodeId, Value};
use topk_net::rng::substream_rng;

use rand::seq::SliceRandom;

/// Deterministic shuffled `(id, value)` entries of `0..n`.
pub fn permuted_entries(n: usize, seed: u64) -> Vec<(NodeId, Value)> {
    let mut rng = substream_rng(seed, n as u64);
    let mut values: Vec<Value> = (0..n as Value).collect();
    values.shuffle(&mut rng);
    values
        .into_iter()
        .enumerate()
        .map(|(i, v)| (NodeId(i as u32), v))
        .collect()
}

/// Standard bench sizes (kept moderate so `cargo bench` finishes quickly).
pub const PROTOCOL_SIZES: &[usize] = &[256, 1024, 4096, 16_384];
pub const MONITOR_SIZES: &[usize] = &[64, 256, 1024];
