//! Minimal offline stand-in for the `rand_core` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! tiny slice of the `rand_core` API it actually uses: [`RngCore`] and
//! [`SeedableRng`] (including the SplitMix64-based `seed_from_u64` default,
//! matching upstream's construction).

#![forbid(unsafe_code)]

/// A source of uniformly distributed random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with a SplitMix64 stream (the same
    /// general construction upstream uses, so small seeds are well spread).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            let bytes = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert_eq!(buf[0], 1);
        assert!(buf[8..].iter().any(|&b| b != 0) || buf[8] == 2);
    }
}
