//! Minimal offline stand-in for the `bytes` crate: [`Buf`], [`BufMut`],
//! [`BytesMut`] and [`Bytes`] backed by plain `Vec<u8>`.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Read-side cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("get_u8 on empty buffer");
        *self = rest;
        *first
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn get_u8(&mut self) -> u8 {
        (**self).get_u8()
    }
}

/// Write-side byte sink.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);

    fn put_slice(&mut self, src: &[u8]) {
        for &b in src {
            self.put_u8(b);
        }
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_u8(&mut self, v: u8) {
        (**self).put_u8(v)
    }
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Convert into an immutable, cursored [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Immutable byte container with an internal read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes {
            data: src.to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new `Bytes` over a subrange of the remaining view.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        let view = &self.data[self.pos..];
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => view.len(),
        };
        Bytes {
            data: view[start..end].to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.pos < self.data.len(), "get_u8 on empty Bytes");
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_slice(&[2, 3, 4]);
        assert_eq!(buf.len(), 4);
        assert_eq!(&buf[..], &[1, 2, 3, 4]);
        let mut rd = buf.freeze();
        assert_eq!(rd.remaining(), 4);
        assert_eq!(rd.get_u8(), 1);
        assert_eq!(rd.get_u8(), 2);
        assert_eq!(rd.remaining(), 2);
    }

    #[test]
    fn slice_buf_consumes_front() {
        let data = [9u8, 8, 7];
        let mut rd: &[u8] = &data;
        assert_eq!(rd.remaining(), 3);
        assert_eq!(rd.get_u8(), 9);
        assert_eq!(rd.remaining(), 2);
    }
}
