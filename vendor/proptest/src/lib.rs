//! Offline vendored stand-in for `proptest`.
//!
//! Provides the slice of the API this workspace uses: the [`proptest!`]
//! macro (with optional `#![proptest_config(...)]`), integer-range and
//! `prop::collection::vec` strategies, `prop_map`, `any::<bool>()`, and the
//! `prop_assert!` / `prop_assert_eq!` assertions. No shrinking: a failing
//! case panics with the generating seed so it can be replayed by rerunning
//! the test (generation is fully deterministic per test name and case
//! index).
//!
//! Set `PROPTEST_SEED=<u64>` to derive a different deterministic case
//! stream (CI runs property suites under several seeds this way); unset or
//! `0` reproduces the default stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

// --------------------------------------------------------------------------
// Deterministic test RNG.
// --------------------------------------------------------------------------

/// SplitMix64-based generator; deterministic per `(test name, case index)`.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h
                ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ env_seed().wrapping_mul(0xa076_1d64_78bd_642f),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..=span` via rejection (exact).
    pub fn below_inclusive(&mut self, span: u64) -> u64 {
        if span == u64::MAX {
            return self.next_u64();
        }
        let s = span + 1;
        let zone = (u64::MAX / s) * s;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % s;
            }
        }
    }
}

/// Extra entropy mixed into every [`TestRng`], taken from `PROPTEST_SEED`
/// (unset, empty, or unparsable ⇒ 0, the default stream). Read per call so
/// in-process tests can vary it; the parse is trivial next to a test case.
fn env_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

/// The active `PROPTEST_SEED` — exposed so failure messages can name the
/// stream a case came from (macro plumbing; not part of the proptest API).
#[doc(hidden)]
pub fn __env_seed() -> u64 {
    env_seed()
}

// --------------------------------------------------------------------------
// Strategies.
// --------------------------------------------------------------------------

/// A value generator. Unlike real proptest there is no shrinking tree; a
/// strategy simply samples deterministically from a [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64) - 1;
                self.start.wrapping_add(rng.below_inclusive(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(rng.below_inclusive(span) as $t)
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i32, i64, isize);

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Strategy behind `any::<bool>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specification for [`vec`]: a fixed length or a length range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Vec-of-elements strategy, mirroring `prop::collection::vec`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below_inclusive(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --------------------------------------------------------------------------
// Config + macros.
// --------------------------------------------------------------------------

/// Mirror of `proptest::test_runner::Config` for the fields used here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The test-definition macro. Accepts an optional leading
/// `#![proptest_config(expr)]`, then one or more `#[test] fn name(args) {}`
/// items whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat in $strat:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..cfg.cases as u64 {
                    let mut __rng = $crate::TestRng::new(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    let __result: ::std::result::Result<(), String> = (|| {
                        { $body }
                        Ok(())
                    })();
                    if let Err(msg) = __result {
                        panic!(
                            "proptest case {} of {} (PROPTEST_SEED={}) failed: {}",
                            __case, stringify!($name), $crate::__env_seed(), msg
                        );
                    }
                }
            }
        )*
    };
}

/// Assertion macros: fail the enclosing generated closure with `Err`.
/// Skip the current case when an assumption does not hold (counts as a
/// passing case; no retry, matching this shim's no-shrinking model).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!($($fmt)*));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// The prelude, mirroring `proptest::prelude::*` for the names used here.
pub mod prelude {
    pub use crate::collection as _collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestRng,
    };

    /// The `prop` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(u64, bool)>> {
        prop::collection::vec((0u64..100).prop_map(|v| (v, v % 2 == 0)), 1..=10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(v in 10u64..20, w in 0usize..=5, b in any::<bool>()) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w <= 5);
            let _ = b;
        }

        #[test]
        fn vec_strategy_sizes(xs in prop::collection::vec(0u64..=100, 2..=7)) {
            prop_assert!(xs.len() >= 2 && xs.len() <= 7);
            prop_assert!(xs.iter().all(|&x| x <= 100));
        }

        #[test]
        fn mapped_strategies(pairs in arb_pairs()) {
            for (v, even) in pairs {
                prop_assert_eq!(even, v % 2 == 0);
            }
        }
    }

    /// Determinism per (name, case) and the `PROPTEST_SEED` stream shift in
    /// one test: the env mutation must not interleave with the determinism
    /// assertions on another thread, and every other shim test is
    /// stream-independent (bounds/self-consistency only). The ambient
    /// variable is captured and restored, so the test also passes when the
    /// whole binary runs under a nonzero seed.
    #[test]
    fn deterministic_per_name_case_and_env_seed() {
        let ambient = std::env::var("PROPTEST_SEED").ok();
        let mut a = TestRng::new("x", 3);
        let mut b = TestRng::new("x", 3);
        let mut c = TestRng::new("x", 4);
        let base_draw = a.next_u64();
        assert_eq!(base_draw, b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());

        // A seed distinct from the ambient one must shift the stream.
        let other = if super::env_seed() == 17 { 18 } else { 17 };
        std::env::set_var("PROPTEST_SEED", other.to_string());
        let seeded_draw = TestRng::new("x", 3).next_u64();
        let repeat_draw = TestRng::new("x", 3).next_u64();
        match &ambient {
            Some(v) => std::env::set_var("PROPTEST_SEED", v),
            None => std::env::remove_var("PROPTEST_SEED"),
        }
        assert_ne!(base_draw, seeded_draw, "seed must shift the stream");
        assert_eq!(seeded_draw, repeat_draw, "seeded stream is deterministic");
        assert_eq!(
            base_draw,
            TestRng::new("x", 3).next_u64(),
            "restoring the ambient seed restores its stream"
        );
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(v in 0u64..10) {
                prop_assert!(v > 100, "v={v} is not large");
            }
        }
        inner();
    }
}
