//! Offline vendored `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Implemented directly on `proc_macro` tokens (no `syn`/`quote` available
//! offline). Supports the shapes this workspace derives on: unit/tuple/named
//! structs and enums with unit, tuple, and struct variants — all without
//! generics. Conventions mirror real serde's JSON encoding: named structs as
//! maps, newtype structs transparent, enums externally tagged.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

/// Skip `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        if is_punct(toks.get(*i), '#') {
            *i += 2; // '#' + bracket group
            continue;
        }
        if is_ident(toks.get(*i), "pub") {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
            continue;
        }
        break;
    }
}

/// Split a token list on top-level commas, tracking `<...>` nesting so type
/// arguments don't split. Groups are atomic tokens, so parens/brackets are
/// already opaque. Empty chunks (trailing commas) are dropped.
fn split_top(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    if !cur.is_empty() {
                        chunks.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        chunks.push(cur);
    }
    chunks
}

/// Parse a brace-group body of named fields into their names.
fn parse_named_fields(toks: &[TokenTree]) -> Vec<String> {
    split_top(toks)
        .iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive shim: expected field name, got {other:?}"),
            }
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    i += 1;
    if is_punct(toks.get(i), '<') {
        panic!("serde_derive shim: generic types are not supported (type {name})");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&body))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let body: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(split_top(&body).len())
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive shim: unexpected struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<_>>()
                }
                other => panic!("serde_derive shim: expected enum body, got {other:?}"),
            };
            let variants = split_top(&body)
                .iter()
                .map(|chunk| {
                    let mut j = 0;
                    skip_attrs_and_vis(chunk, &mut j);
                    let vname = match chunk.get(j) {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!("serde_derive shim: expected variant name, got {other:?}"),
                    };
                    j += 1;
                    let fields = match chunk.get(j) {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            let body: Vec<TokenTree> = g.stream().into_iter().collect();
                            Fields::Named(parse_named_fields(&body))
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let body: Vec<TokenTree> = g.stream().into_iter().collect();
                            Fields::Tuple(split_top(&body).len())
                        }
                        _ => Fields::Unit, // unit variant (a `= disc` tail is ignored)
                    };
                    Variant {
                        name: vname,
                        fields,
                    }
                })
                .collect();
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

fn named_to_content(fields: &[String], access: &dyn Fn(&str) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(String::from(\"{f}\"), ::serde::Serialize::to_content({})),",
                access(f)
            )
        })
        .collect();
    format!("::serde::Content::Map(vec![{}])", entries.join(""))
}

fn named_from_content(fields: &[String], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_content({src}.get(\"{f}\")\
                 .ok_or_else(|| ::serde::DeError::new(\"missing field `{f}`\"))?)?,"
            )
        })
        .collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Content::Unit".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i}),"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(""))
                }
                Fields::Named(fs) => named_to_content(fs, &|f| format!("&self.{f}")),
            };
            format!(
                "#[automatically_derived] #[allow(unused_variables, clippy::all)] impl ::serde::Serialize for {name} {{\
                     fn to_content(&self) -> ::serde::Content {{ {body} }}\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Content::Map(vec![(String::from(\"{vn}\"), \
                             ::serde::Serialize::to_content(x0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(x{i}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![(String::from(\"{vn}\"), \
                                 ::serde::Content::Seq(vec![{}]))]),",
                                binds.join(","),
                                items.join("")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(",");
                            let inner = named_to_content(fs, &|f| f.to_string());
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![\
                                 (String::from(\"{vn}\"), {inner})]),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived] #[allow(unused_variables, clippy::all)] impl ::serde::Serialize for {name} {{\
                     fn to_content(&self) -> ::serde::Content {{\
                         match self {{ {} }}\
                     }}\
                 }}",
                arms.join("")
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated code must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_content(content)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?,"))
                        .collect();
                    format!(
                        "match content {{\
                             ::serde::Content::Seq(items) if items.len() == {n} =>\
                                 Ok({name}({})),\
                             other => Err(::serde::DeError::new(format!(\
                                 \"expected {n}-element seq for {name}, got {{other:?}}\"))),\
                         }}",
                        items.join("")
                    )
                }
                Fields::Named(fs) => {
                    let inner = named_from_content(fs, "content");
                    format!("Ok({name} {{ {inner} }})")
                }
            };
            format!(
                "#[automatically_derived] #[allow(unused_variables, clippy::all)] impl ::serde::Deserialize for {name} {{\
                     fn from_content(content: &::serde::Content) -> Result<Self, ::serde::DeError> {{\
                         {body}\
                     }}\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match inner {{\
                                     ::serde::Content::Seq(items) if items.len() == {n} =>\
                                         Ok({name}::{vn}({})),\
                                     other => Err(::serde::DeError::new(format!(\
                                         \"bad payload for {name}::{vn}: {{other:?}}\"))),\
                                 }},",
                                items.join("")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inner = named_from_content(fs, "inner");
                            Some(format!("\"{vn}\" => Ok({name}::{vn} {{ {inner} }}),"))
                        }
                    }
                })
                .collect();
            format!(
                "#[automatically_derived] #[allow(unused_variables, clippy::all)] impl ::serde::Deserialize for {name} {{\
                     fn from_content(content: &::serde::Content) -> Result<Self, ::serde::DeError> {{\
                         match content {{\
                             ::serde::Content::Str(s) => match s.as_str() {{\
                                 {}\
                                 other => Err(::serde::DeError::new(format!(\
                                     \"unknown unit variant `{{other}}` for {name}\"))),\
                             }},\
                             ::serde::Content::Map(entries) if entries.len() == 1 => {{\
                                 let (tag, inner) = &entries[0];\
                                 match tag.as_str() {{\
                                     {}\
                                     other => Err(::serde::DeError::new(format!(\
                                         \"unknown variant `{{other}}` for {name}\"))),\
                                 }}\
                             }}\
                             other => Err(::serde::DeError::new(format!(\
                                 \"expected variant encoding for {name}, got {{other:?}}\"))),\
                         }}\
                     }}\
                 }}",
                unit_arms.join(""),
                tagged_arms.join("")
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated code must parse")
}
