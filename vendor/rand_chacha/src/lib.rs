//! Minimal offline stand-in for the `rand_chacha` crate: a genuine ChaCha
//! (12 rounds) keystream generator behind the [`ChaCha12Rng`] name.
//!
//! Only the surface this workspace uses is provided: `ChaCha12Rng`,
//! `rand_core` re-export, `SeedableRng::{from_seed, seed_from_u64}`, and the
//! `RngCore` sampling interface. Word-stream order follows the ChaCha block
//! function with a 64-bit block counter; it is deterministic per seed, which
//! is the property every experiment in this repository relies on.

#![forbid(unsafe_code)]

pub use rand_core;

use rand_core::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 12 rounds, keyed by a 32-byte seed, zero nonce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill needed".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..6 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha12Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let mut c = ChaCha12Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let n = 100_000;
        let mut ones = 0u64;
        for _ in 0..n {
            ones += rng.next_u64().count_ones() as u64;
        }
        let mean = ones as f64 / n as f64;
        assert!((mean - 32.0).abs() < 0.1, "mean popcount {mean}");
    }
}
