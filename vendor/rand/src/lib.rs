//! Minimal offline stand-in for the `rand` crate (0.8-style API).
//!
//! Provides exactly the surface this workspace uses: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]/[`RngCore`]
//! re-exports, and [`seq::SliceRandom::shuffle`]. Integer ranges are sampled
//! with rejection (no modulo bias); floats use the 53-bit mantissa ladder.

#![forbid(unsafe_code)]

pub use rand_core::{RngCore, SeedableRng};

use std::ops::{Range, RangeInclusive};

/// Exact uniform draw from `0..=span` (inclusive) via rejection sampling.
#[inline]
fn uniform_u64_inclusive<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let s = span + 1;
    // Accept values below the largest multiple of `s`; at least half of the
    // u64 space is accepted, so the expected number of draws is < 2.
    let zone = (u64::MAX / s) * s;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % s;
        }
    }
}

/// A 53-bit uniform draw in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types of range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64) - 1;
                self.start.wrapping_add(uniform_u64_inclusive(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(uniform_u64_inclusive(rng, span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end - self.start;
        loop {
            let v = self.start + span * unit_f64(rng);
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// The `rand`-style extension trait over any [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates), matching `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5u64..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_inclusive() {
        let mut rng = Lcg(1);
        // Must not panic or loop forever.
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Lcg(3);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn shuffle_permutes() {
        use seq::SliceRandom;
        let mut rng = Lcg(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements virtually never stay in place");
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = Lcg(7);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }
}
