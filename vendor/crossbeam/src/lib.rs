//! Minimal offline stand-in for the `crossbeam` crate surface this workspace
//! uses: `channel::{unbounded, Sender, Receiver}` (over `std::sync::mpsc`)
//! and `thread::scope` (over `std::thread::scope`).

#![forbid(unsafe_code)]

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// Unbounded MPSC channel, `crossbeam-channel` style.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg)
        }
    }

    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }
}

pub mod thread {
    /// Scope handle passed to spawned closures, mirroring
    /// `crossbeam::thread::Scope` (the closure receives `&Scope`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let reborrow = Scope { inner: self.inner };
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&reborrow)),
            }
        }
    }

    /// Scoped threads; always returns `Ok` (panics propagate on join, as with
    /// `std::thread::scope` semantics).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn scoped_threads_join() {
        let data = vec![1u64, 2, 3];
        let sum: u64 = super::thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<u64>());
            let h2 = s.spawn(|_| 10u64);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 16);
    }
}
