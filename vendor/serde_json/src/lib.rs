//! Offline vendored JSON serializer/deserializer over the serde shim's
//! [`serde::Content`] tree. Supports exactly the workspace's needs:
//! `to_string`, `to_string_pretty`, `from_str`.

#![forbid(unsafe_code)]

use serde::{Content, DeError, Deserialize, Serialize};

/// JSON error (both directions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// --------------------------------------------------------------------------
// Writer.
// --------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) -> Result<()> {
    if !v.is_finite() {
        return Err(Error(format!("cannot serialize non-finite float {v}")));
    }
    // Rust's shortest round-trip formatting; ensure a float shape so the
    // value re-parses as a float-compatible number.
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
    Ok(())
}

fn write_content(out: &mut String, c: &Content, pretty: Option<usize>) -> Result<()> {
    match c {
        Content::Unit => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v)?,
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(indent) = pretty {
                    newline_indent(out, indent + 1);
                }
                write_content(out, item, pretty.map(|d| d + 1))?;
            }
            if let Some(indent) = pretty {
                if !items.is_empty() {
                    newline_indent(out, indent);
                }
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(indent) = pretty {
                    newline_indent(out, indent + 1);
                }
                escape_into(out, k);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_content(out, v, pretty.map(|d| d + 1))?;
            }
            if let Some(indent) = pretty {
                if !entries.is_empty() {
                    newline_indent(out, indent);
                }
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, depth: usize) {
    out.push('\n');
    for _ in 0..depth {
        out.push_str("  ");
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None)?;
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(0))?;
    Ok(out)
}

// --------------------------------------------------------------------------
// Parser.
// --------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Unit),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // accept BMP scalars only.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u scalar"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundary: find the full UTF-8 char.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::from_content(&content).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(from_str::<f64>("0.25").unwrap(), 0.25);
        assert_eq!(to_string(&5.0f64).unwrap(), "5.0");
        assert_eq!(from_str::<f64>("5.0").unwrap(), 5.0);
        assert_eq!(
            to_string(&String::from("a\"b\\c\n")).unwrap(),
            "\"a\\\"b\\\\c\\n\""
        );
        assert_eq!(
            from_str::<String>("\"a\\\"b\\\\c\\n\"").unwrap(),
            "a\"b\\c\n"
        );
    }

    #[test]
    fn float_roundtrip_exact() {
        for v in [0.2f64, 1.0 / 3.0, 1e-9, 123456.789, f64::MIN_POSITIVE] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u64, 2], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u64>>>(&s).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u64>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(
            from_str::<Vec<u64>>(" [ 1 , 2 ,\n 3 ] ").unwrap(),
            vec![1, 2, 3]
        );
    }
}
