//! Offline vendored stand-in for `criterion`.
//!
//! Implements the API surface the bench suite uses — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `criterion_group!`, `criterion_main!` — with a simple
//! timing loop: per sample, the measured closure is iterated enough times to
//! fill `measurement_time / sample_size`, and the median per-iteration time
//! (plus derived throughput) is printed.
//!
//! Environment knobs:
//! * `CRITERION_QUICK=1` — smoke mode: one sample, one iteration per bench
//!   (used by CI to check the benches still run without paying for timing).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `function_id` plus an optional parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_id: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function_id: Some(function_id.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function_id: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function_id, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function_id: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function_id: Some(s),
            parameter: None,
        }
    }
}

/// The per-measurement handle passed to bench closures.
pub struct Bencher {
    /// Iterations the next `iter` call should run.
    iters: u64,
    /// Measured wall time of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        run_bench(
            &id.render(),
            10,
            Duration::from_millis(200),
            Duration::from_secs(1),
            None,
            f,
        );
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id: BenchmarkId = id.into();
        let full = format!("{}/{}", self.name, id.render());
        run_bench(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.render());
        run_bench(
            &full,
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(&mut self) {}
}

fn fmt_duration(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let quick = quick_mode();
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    if quick {
        f(&mut bencher);
        println!("bench {name}: ok (quick mode, 1 iteration)");
        return;
    }

    // Warm-up: run single iterations until the warm-up budget is spent, and
    // estimate the per-iteration time.
    let warm_start = Instant::now();
    let mut per_iter_ns: f64 = 0.0;
    let mut warm_runs = 0u32;
    while warm_start.elapsed() < warm_up || warm_runs == 0 {
        bencher.iters = 1;
        f(&mut bencher);
        per_iter_ns += bencher.elapsed.as_nanos() as f64;
        warm_runs += 1;
        if warm_runs >= 1000 {
            break;
        }
    }
    per_iter_ns /= warm_runs as f64;

    // Aim each sample at measurement_time / sample_size.
    let budget_ns = measurement.as_nanos() as f64 / sample_size as f64;
    let iters = ((budget_ns / per_iter_ns.max(1.0)).round() as u64).max(1);

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.iters = iters;
        f(&mut bencher);
        samples_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples_ns[samples_ns.len() / 2];
    let lo = samples_ns[0];
    let hi = samples_ns[samples_ns.len() - 1];

    let mut line = format!(
        "bench {name}: median {} per iter  [{} .. {}]  ({sample_size} samples × {iters} iters)",
        fmt_duration(median),
        fmt_duration(lo),
        fmt_duration(hi)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let rate = count as f64 / (median / 1_000_000_000.0);
        line.push_str(&format!("  → {rate:.0} {unit}/s"));
    }
    println!("{line}");
}

/// Mirrors `criterion_group!`: defines a function running each bench fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion_main!`: the binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test_group");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        group.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::new("inc", 1), &5u64, |b, &x| {
            b.iter(|| {
                count = count.wrapping_add(x);
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 32).render(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(64).render(), "64");
    }
}
