//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors a
//! self-describing tree model ([`Content`]) plus [`Serialize`] /
//! [`Deserialize`] traits over it, and re-exports derive macros from the
//! companion `serde_derive` shim. `serde_json` (also vendored) renders the
//! same tree to and from JSON text with real serde's conventions for the
//! shapes used here: named structs as objects, newtype structs transparent,
//! enums externally tagged.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Unit,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a [`Content::Map`].
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

/// Serializable into the [`Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Deserializable from the [`Content`] tree.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// --------------------------------------------------------------------------
// Primitive impls.
// --------------------------------------------------------------------------

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t)))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t)))),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected signed integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => Err(DeError::new(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Unit,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Unit => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::from_content(
                                it.next().ok_or_else(|| DeError::new("tuple too short"))?,
                            )?,
                        )+))
                    }
                    other => Err(DeError::new(format!("expected tuple seq, got {other:?}"))),
                }
            }
        }
    )+};
}

tuple_impls!((A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u64::from_content(&42u64.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-3i64).to_content()).unwrap(), -3);
        assert_eq!(bool::from_content(&true.to_content()).unwrap(), true);
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_content(&v.to_content()).unwrap(), v);
        let t = (1u64, 2.5f64);
        let back: (u64, f64) = Deserialize::from_content(&t.to_content()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn option_unit_mapping() {
        let some: Option<u64> = Some(5);
        let none: Option<u64> = None;
        assert_eq!(
            Option::<u64>::from_content(&some.to_content()).unwrap(),
            some
        );
        assert_eq!(
            Option::<u64>::from_content(&none.to_content()).unwrap(),
            none
        );
    }
}
